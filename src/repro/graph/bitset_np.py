"""Packed-bitset numpy layer: word-matrix kernels and a large-n graph core.

The Python-int bitmask core (:mod:`repro.graph.core`) wins for graphs
up to a few hundred nodes because each adjacency is a single machine
object and CPython's big-int ops run in C.  Past roughly a thousand
nodes two costs start to dominate:

* *per-row overhead* — set-algebraic sweeps (neighbourhood unions,
  component frontiers) still pay one interpreter round-trip per vertex
  row touched, and
* *per-pair overhead* — the separator-crossing oracle of the SGR layer
  pays a full Python call per (v, u) pair even though the test itself
  is a handful of word ANDs.

This module packs vertex bitmasks into rows of ``uint64`` *word
matrices* so those sweeps become single vectorized numpy expressions:

* :func:`pack_mask` / :func:`pack_masks` / :func:`unpack_row` convert
  between the int-mask representation used everywhere else and packed
  ``uint64`` rows (little-endian word order, so bit ``i`` of a mask is
  bit ``i % 64`` of word ``i // 64``);
* :func:`popcount` counts set bits per row (``np.bitwise_count`` when
  available, a byte-table fallback otherwise);
* :func:`crossing_batch` is the batched separator-crossing kernel: one
  separator's component matrix against many remainder rows in one
  vectorized pass (see
  :meth:`repro.sgr.separator_graph.MinimalSeparatorSGR.has_edges_batch`);
* the *Extend-side* kernels batch the triangulation pipeline of the
  paper's ``Extend`` procedure: :func:`mask_to_indices` /
  :func:`indices_to_mask` convert between masks and index arrays
  without per-bit Python loops, :func:`union_rows` OR-reduces many
  adjacency rows at once, :func:`frontier_sweep` runs a whole
  reachability fixpoint on the packed matrix, :func:`saturate_batch`
  extracts (and optionally applies, via :func:`set_edge_bits`) every
  missing pair of a would-be clique in one pass, :func:`is_peo_packed`
  verifies a perfect elimination ordering with matrix-level cumulative
  ORs, and :class:`PackedMCSQueue` (with :func:`weight_level_rows`)
  replaces the per-bit bucket scans of the MCS-family searches with
  argmax reductions over a flat key array.
  :func:`packed_view` is how the chordal layer detects a numpy-backed
  core and routes onto these kernels (the int-mask implementations
  stay the reference oracles);
* :class:`NumpyGraphCore` is an :class:`~repro.graph.core.IndexedGraph`
  whose batch-heavy methods (neighbourhood-of-set, component
  expansion) run on a lazily maintained packed adjacency matrix —
  the size-adaptive backend selected for large graphs;
* :func:`select_core_class` / :func:`convert_graph` implement the
  backend registry (``"indexed"`` / ``"numpy"`` / ``"auto"``) used by
  the enumeration engine and the CLI ``--graph-backend`` flag.

Everything here is API-compatible with the int-mask core: masks go in,
masks come out, and the packed matrices are pure caches — invalidated
on mutation, rebuilt on demand — so correctness never depends on them.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable
from multiprocessing import shared_memory

import numpy as np

from repro.graph.core import IndexedGraph, bit_list, iter_bits

__all__ = [
    "WORD_BITS",
    "NUMPY_THRESHOLD",
    "NARROW_MAX_DEGREE",
    "GRAPH_BACKENDS",
    "word_count",
    "pack_mask",
    "pack_masks",
    "zero_matrix",
    "unpack_row",
    "unpack_rows",
    "popcount",
    "crossing_batch",
    "crossing_batch_gather",
    "mask_to_indices",
    "indices_to_mask",
    "union_rows",
    "frontier_sweep",
    "saturate_batch",
    "set_edge_bits",
    "is_peo_packed",
    "weight_level_rows",
    "PackedMCSQueue",
    "packed_view",
    "SharedPackedBuffer",
    "NumpyGraphCore",
    "select_core_class",
    "core_backend_name",
    "convert_graph",
]

WORD_BITS = 64

#: Node count above which ``"auto"`` selects the numpy core.  Below it
#: single-int masks fit in a few machine words and the per-call numpy
#: overhead outweighs the vectorization win.
NUMPY_THRESHOLD = 1500

#: Maximum degree up to which a graph counts as *narrow* for the
#: width-adaptive kernel gate: every component of a max-degree-≤2 graph
#: is a path or a cycle, so BFS/sweep frontiers never exceed 2 vertices
#: and the packed kernels have nothing to vectorize (they only pay
#: their per-round dispatch overhead, ~10 % on long cycles).
NARROW_MAX_DEGREE = 2

_WORD_DTYPE = np.dtype("<u8")

# Vectorized popcount: numpy >= 2.0 ships np.bitwise_count; older
# versions fall back to summing a byte-level popcount table.
_BITWISE_COUNT = getattr(np, "bitwise_count", None)
_BYTE_POPCOUNT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def word_count(num_bits: int) -> int:
    """Return how many 64-bit words hold ``num_bits`` bits (at least 1)."""
    return max(1, (num_bits + WORD_BITS - 1) // WORD_BITS)


def pack_mask(mask: int, words: int) -> np.ndarray:
    """Pack an int bitmask into a ``(words,)`` uint64 row."""
    return np.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=_WORD_DTYPE
    )


def pack_masks(masks: Iterable[int], words: int) -> np.ndarray:
    """Pack int bitmasks into an ``(m, words)`` uint64 matrix."""
    nbytes = words * 8
    buffer = b"".join([mask.to_bytes(nbytes, "little") for mask in masks])
    packed = np.frombuffer(buffer, dtype=_WORD_DTYPE)
    return packed.reshape(-1, words)


def zero_matrix(rows: int, words: int) -> np.ndarray:
    """An all-zero ``(rows, words)`` packed matrix (growable row store)."""
    return np.zeros((rows, words), dtype=_WORD_DTYPE)


def unpack_row(row: np.ndarray) -> int:
    """Unpack a uint64 row back into an int bitmask."""
    return int.from_bytes(
        np.ascontiguousarray(row, dtype=_WORD_DTYPE).tobytes(), "little"
    )


def unpack_rows(packed: np.ndarray) -> list[int]:
    """Unpack an ``(m, words)`` matrix back into m int bitmasks.

    One ``tobytes`` for the whole matrix plus one ``int.from_bytes``
    per row — the bulk inverse of :func:`pack_masks`, used by sharded
    workers to rebuild their int-mask adjacency from a shipped packed
    matrix without unpickling m big ints.
    """
    nbytes = packed.shape[1] * 8
    buffer = np.ascontiguousarray(packed, dtype=_WORD_DTYPE).tobytes()
    from_bytes = int.from_bytes
    return [
        from_bytes(buffer[start : start + nbytes], "little")
        for start in range(0, len(buffer), nbytes)
    ]


def popcount(packed: np.ndarray) -> np.ndarray:
    """Count set bits along the last (word) axis of ``packed``."""
    if _BITWISE_COUNT is not None:
        return _BITWISE_COUNT(packed).sum(axis=-1, dtype=np.int64)
    as_bytes = packed.view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)


def crossing_batch(
    components: np.ndarray, remainders: np.ndarray
) -> np.ndarray:
    """The batched crossing kernel: which remainders touch >= 2 components?

    Parameters
    ----------
    components:
        ``(k, words)`` packed component masks of ``g \\ S`` for one
        separator S.
    remainders:
        ``(m, words)`` packed masks ``T_i \\ S`` for m candidate
        separators.

    Returns
    -------
    np.ndarray
        Boolean ``(m,)`` vector: entry i is True iff remainder i
        intersects at least two component rows — i.e. S crosses T_i.
        An all-zero remainder (``T_i ⊆ S``) touches no component and
        yields False, matching the scalar oracle.

    The loop runs over the k component rows (k is small — a minimal
    separator rarely splits the graph into many parts) with each
    iteration a vectorized AND+any over all m remainders, so the cost
    is O(k · m · words) word operations with no per-pair Python
    overhead.
    """
    touched = np.zeros(remainders.shape[0], dtype=np.int64)
    if not touched.shape[0] or not components.shape[0]:
        return touched >= 2
    check_exit = len(components) > 8
    for row in components:
        touched += (remainders & row).any(axis=1)
        # Early exit pays only when many component rows remain: once
        # every remainder has met two components no further row can
        # change the answer.
        if check_exit and touched.min() >= 2:
            break
    return touched >= 2


def crossing_batch_gather(
    components: np.ndarray, matrix: np.ndarray, ids, v_id: int
) -> list[bool]:
    """Gathered crossing sweep: ``matrix[ids] & ~matrix[v_id]`` vs components.

    The numpy twin of the fused native kernel of the same name: it
    materialises the remainder matrix (the native tier streams it row
    by row in C) and reuses :func:`crossing_batch`, so every kernel
    tier answers the SGR's batched edge oracle through one signature.
    """
    ids_arr = np.asarray(ids, dtype=np.int64)
    if not ids_arr.shape[0]:
        return []
    remainders = matrix[ids_arr] & ~matrix[v_id]
    return crossing_batch(components, remainders).tolist()


# ----------------------------------------------------------------------
# Extend-side kernels (the triangulation pipeline of ``Extend``)
# ----------------------------------------------------------------------

#: Set sizes below this run the inherited int-mask loop; the numpy
#: call overhead only pays off on wider masks.
BATCH_MIN = 16


def mask_to_indices(mask: int, words: int) -> np.ndarray:
    """Set-bit indices of an int mask as an ascending int64 array.

    The per-bit ``low = mask & -mask`` loop of the int tier costs one
    Python iteration per member; this unpacks the whole mask through
    one ``np.unpackbits`` pass instead.
    """
    as_bytes = np.frombuffer(mask.to_bytes(words * 8, "little"), dtype=np.uint8)
    return np.flatnonzero(np.unpackbits(as_bytes, bitorder="little"))


def indices_to_mask(indices: np.ndarray, words: int) -> int:
    """Inverse of :func:`mask_to_indices`: an index array as an int mask."""
    bits = np.zeros(words * WORD_BITS, dtype=np.uint8)
    bits[indices] = 1
    return int.from_bytes(
        np.packbits(bits, bitorder="little").tobytes(), "little"
    )


def union_rows(matrix: np.ndarray, indices) -> int:
    """OR-reduce the selected rows of a packed matrix into an int mask."""
    if not len(indices):
        return 0
    return unpack_row(np.bitwise_or.reduce(matrix[indices], axis=0))


def frontier_sweep(
    matrix: np.ndarray,
    seed: int,
    available: int,
    adj: list[int] | None = None,
) -> int:
    """Reachability fixpoint on the packed matrix: the component of ``seed``.

    Each round ORs the adjacency rows of the whole frontier in one
    vectorized reduction (falling back to the int-mask loop for
    frontiers below :data:`BATCH_MIN` when ``adj`` is given), so a
    breadth-first sweep costs O(rounds) numpy calls instead of one
    Python iteration per frontier vertex.
    """
    words = matrix.shape[1]
    component = seed
    frontier = seed
    while frontier:
        if adj is not None and frontier.bit_count() < BATCH_MIN:
            reached = 0
            for i in bit_list(frontier):
                reached |= adj[i]
        else:
            reached = union_rows(matrix, mask_to_indices(frontier, words))
        frontier = reached & available & ~component
        component |= frontier
    return component


def saturate_batch(
    matrix: np.ndarray, mask: int
) -> tuple[np.ndarray, np.ndarray]:
    """Missing pairs inside ``mask`` as ``(u, v)`` index arrays, u < v.

    One vectorized pass over the packed adjacency rows of the mask's
    members replaces the per-member missing-bit scan of the int tier;
    the pairs come back in the same (u-major, v-ascending) order the
    scalar ``IndexedGraph.saturate`` produces them.  Combine with
    :func:`set_edge_bits` to apply the fill to a packed mirror in
    place.
    """
    words = matrix.shape[1]
    idx = mask_to_indices(mask, words)
    missing = pack_mask(mask, words) & ~matrix[idx]
    bits = np.unpackbits(missing.view(np.uint8), axis=1, bitorder="little")
    row, col = np.nonzero(bits)
    u = idx[row]
    # ``missing`` still contains each member's own bit (adjacency rows
    # never hold the diagonal) and both orientations; keeping the
    # strictly upper pairs drops both at once.
    keep = col > u
    return u[keep], col[keep]


def set_edge_bits(
    matrix: np.ndarray, u_arr: np.ndarray, v_arr: np.ndarray
) -> None:
    """Set the (u, v) and (v, u) bits of a packed adjacency in place."""
    one = np.uint64(1)
    np.bitwise_or.at(
        matrix,
        (u_arr, v_arr // WORD_BITS),
        one << (v_arr % WORD_BITS).astype(np.uint64),
    )
    np.bitwise_or.at(
        matrix,
        (v_arr, u_arr // WORD_BITS),
        one << (u_arr % WORD_BITS).astype(np.uint64),
    )


def clique_present_sum(matrix: np.ndarray, mask: int) -> int:
    """Adjacency bits already present inside the clique candidate ``mask``.

    Sums ``popcount(matrix[u] & mask)`` over the members ``u`` of the
    mask — each present undirected edge counts twice, which is how
    :meth:`NumpyGraphCore.missing_pair_count` consumes it.
    """
    words = matrix.shape[1]
    idx = mask_to_indices(mask, words)
    return int(popcount(matrix[idx] & pack_mask(mask, words)).sum())


def is_peo_packed(matrix: np.ndarray, order) -> bool:
    """The Rose–Tarjan–Lueker PEO test as packed-matrix reductions.

    Semantically identical to the int-mask implementation in
    :func:`repro.chordal.peo.is_perfect_elimination_ordering` (the
    reference oracle): build every ``madj`` row with one cumulative OR
    over the ordered one-hot rows, locate each vertex's parent (its
    earliest later neighbour) with a masked positional min, and test
    ``madj(v) \\ {p(v)} ⊆ madj(p(v))`` for all vertices in one
    vectorized subset check.
    """
    k = len(order)
    if k == 0:
        return True
    words = matrix.shape[1]
    order = np.asarray(order, dtype=np.int64)
    rows = matrix[order]
    own = zero_matrix(k, words)
    own[np.arange(k), order // WORD_BITS] = np.uint64(1) << (
        order % WORD_BITS
    ).astype(np.uint64)
    # later[i] = OR of the one-hot rows of every vertex ordered after i.
    acc = np.bitwise_or.accumulate(own[::-1], axis=0)[::-1]
    later = np.zeros_like(own)
    later[:-1] = acc[1:]
    madj = rows & later
    bits = np.unpackbits(madj.view(np.uint8), axis=1, bitorder="little")
    position = np.full(words * WORD_BITS, k, dtype=np.int32)
    position[order] = np.arange(k, dtype=np.int32)
    candidate_pos = np.where(bits.astype(bool), position[None, :], np.int32(k))
    parent_pos = candidate_pos.min(axis=1)
    with_madj = np.flatnonzero(parent_pos < k)
    if not with_madj.shape[0]:
        return True
    parents = parent_pos[with_madj].astype(np.int64)
    violations = madj[with_madj] & ~own[parents] & ~madj[parents]
    return not violations.any()


def weight_level_rows(
    indices: np.ndarray, weights: np.ndarray, words: int
) -> np.ndarray:
    """Group ``indices`` by weight into packed rows, ascending by weight.

    One batched ``packbits`` builds every level at once, so the MCS-M
    threshold sweep gets its weight levels in O(levels · words) numpy
    work per update call instead of maintaining per-weight bucket
    masks across the whole search (whose re-bucketing cost dominated
    the int tier's profile).  Rows are little-endian byte rows; convert
    each to an int mask with ``int.from_bytes(row.tobytes(), "little")``
    on demand — sweeps usually stop well before the last level.
    """
    distinct = np.unique(weights)
    bits = np.zeros((distinct.shape[0], words * WORD_BITS), dtype=np.uint8)
    bits[np.searchsorted(distinct, weights), indices] = 1
    return np.packbits(bits, axis=1, bitorder="little")


class PackedMCSQueue:
    """Max-(weight, min-rank) vertex selection for the packed tier.

    The int tier's :class:`~repro.graph.core.MaxWeightBuckets` keeps
    per-weight bucket masks and scans the top bucket bit by bit; on
    wide graphs both halves become per-member Python work.  This
    structure keeps a flat int64 *key* array ``weight · stride − rank``
    instead: popping the next MCS vertex is one ``argmax``, bumping a
    whole update set is one fancy-indexed add, and no buckets exist to
    maintain (the MCS-M sweep derives its levels per call via
    :func:`weight_level_rows`).  Pop order is identical to the int
    tier: maximum weight first, ties broken by minimum label rank.
    """

    __slots__ = ("weights", "_key", "_stride", "_words")

    _POPPED = np.iinfo(np.int64).min

    def __init__(self, initial_mask: int, ranks, words: int) -> None:
        ranks_arr = np.asarray(ranks, dtype=np.int64)
        self.weights = np.zeros(ranks_arr.shape[0], dtype=np.int64)
        self._stride = ranks_arr.shape[0] + 1
        self._words = words
        member = np.zeros(ranks_arr.shape[0], dtype=bool)
        idx = mask_to_indices(initial_mask, words)
        member[idx[idx < ranks_arr.shape[0]]] = True
        self._key = np.where(member, -ranks_arr, self._POPPED)

    def pop_max(self) -> int:
        """Remove and return the min-rank vertex of maximum weight."""
        best = int(np.argmax(self._key))
        self._key[best] = self._POPPED
        return best

    def bump_mask(self, mask: int) -> None:
        """Add one to the weight of every member of ``mask``."""
        if not mask:
            return
        idx = mask_to_indices(mask, self._words)
        self.weights[idx] += 1
        self._key[idx] += self._stride


# ----------------------------------------------------------------------
# Shared-memory packed buffers (zero-copy worker payloads)
# ----------------------------------------------------------------------


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Ownership is explicit here: the creator unlinks, attachers only
    close.  On Python ≥ 3.13 ``track=False`` keeps an attach from
    registering with the resource tracker at all.  Before 3.13 every
    attach registers — but our attachers are exclusively
    ``multiprocessing`` children of the creator, which share the
    creator's tracker process, so the re-registration is idempotent
    (the tracker keeps a set) and the creator's ``unlink`` removes the
    single entry.  Explicitly unregistering from a worker would be
    *wrong* with a shared tracker: it would erase the creator's
    registration and forfeit the kill-backstop (the tracker unlinking
    the segment if the creator dies before ``unlink``).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


class SharedPackedBuffer:
    """One packed ``uint64`` matrix in a ``multiprocessing`` shared segment.

    The zero-copy transport of the sharded engine's graph payload: the
    coordinator :meth:`create`\\ s the segment once (copying the packed
    adjacency in), ships only the segment *name* plus the matrix shape
    through the pickle channel, and each worker :meth:`attach`\\ es and
    maps :attr:`matrix` as a read-only view — no per-worker unpickle of
    n big-int masks, no per-worker copy of the adjacency.

    Lifecycle is explicitly single-owner: the creating process calls
    :meth:`unlink` exactly once (the pool runner does so on close,
    interrupt and crash-unwind paths), attached processes only ever
    :meth:`close` their mapping.  Attaching never registers with the
    resource tracker (see :func:`_attach_segment`), so a worker killed
    mid-task leaves nothing behind for the tracker to double-free; a
    coordinator killed before ``unlink`` is backstopped by its own
    tracker, which still knows about the created segment.
    """

    __slots__ = ("_segment", "matrix", "owner", "name")

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        rows: int,
        words: int,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.owner = owner
        self.name = segment.name
        matrix = np.frombuffer(
            segment.buf, dtype=_WORD_DTYPE, count=rows * words
        ).reshape(rows, words)
        # Writes belong to the creator, before sharing; a stray write
        # from an attached process would corrupt every other worker.
        matrix.flags.writeable = False
        self.matrix = matrix

    @classmethod
    def create(cls, packed: np.ndarray) -> "SharedPackedBuffer":
        """Allocate a segment and copy ``packed`` into it (owner side)."""
        packed = np.ascontiguousarray(packed, dtype=_WORD_DTYPE)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, packed.nbytes)
        )
        view = np.frombuffer(
            segment.buf, dtype=_WORD_DTYPE, count=packed.size
        ).reshape(packed.shape)
        view[:] = packed
        return cls(segment, packed.shape[0], packed.shape[1], owner=True)

    @classmethod
    def attach(cls, name: str, rows: int, words: int) -> "SharedPackedBuffer":
        """Map an existing segment read-only (worker side)."""
        return cls(_attach_segment(name), rows, words, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        # The numpy view exports a pointer into the mapping; release
        # ours first, and tolerate views still held elsewhere (the
        # mapping then lives until those are collected — ``unlink``
        # below does not depend on the mapping being closed).
        self.matrix = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - caller kept a view
            pass

    def unlink(self) -> None:
        """Destroy the segment system-wide (owner side, exactly once)."""
        self.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class NumpyGraphCore(IndexedGraph):
    """An ``IndexedGraph`` with a packed adjacency matrix for batch ops.

    The int-mask ``adj`` list stays the source of truth, so every
    inherited operation keeps working unchanged; a ``(slots, words)``
    uint64 matrix mirror is built lazily and dropped on any mutation.
    The overridden methods route wide sweeps (OR-reducing many
    adjacency rows at once) through the matrix, which is where the
    numpy core beats single-int masks on graphs of a few thousand
    nodes.
    """

    __slots__ = ("_packed", "_narrow")

    #: Minimum number of rows in a sweep before the packed matrix is
    #: used; below it the inherited int-mask loop is faster.
    _MIN_GATHER = 16

    def __init__(self, num_vertices: int = 0) -> None:
        super().__init__(num_vertices)
        self._packed: np.ndarray | None = None
        self._narrow: bool | None = None

    @classmethod
    def from_indexed(cls, core: IndexedGraph) -> "NumpyGraphCore":
        """Build a numpy core from (a copy of the state of) ``core``."""
        clone = cls.__new__(cls)
        clone.adj = list(core.adj)
        clone.alive = core.alive
        clone.num_edges = core.num_edges
        clone._packed = None
        clone._narrow = None
        return clone

    @classmethod
    def _adopt(cls, core: IndexedGraph) -> "NumpyGraphCore":
        """Like :meth:`from_indexed` but takes ownership of ``core``'s
        adjacency list — for exclusively-owned intermediates only."""
        clone = cls.__new__(cls)
        clone.adj = core.adj
        clone.alive = core.alive
        clone.num_edges = core.num_edges
        clone._packed = None
        clone._narrow = None
        return clone

    @classmethod
    def from_packed(
        cls, packed: np.ndarray, alive: int, num_edges: int
    ) -> "NumpyGraphCore":
        """Build a core over an already-packed adjacency matrix.

        The int-mask ``adj`` rows are bulk-unpacked from the matrix and
        ``packed`` itself — typically a read-only view over a
        :class:`SharedPackedBuffer` — is adopted as the live mirror, so
        a sharded worker starts with its batch matrix warm and shares
        the underlying pages with every other worker.  A read-only
        mirror is safe: the one in-place mutation path
        (:meth:`saturate`) detaches onto a private copy first.
        """
        clone = cls.__new__(cls)
        clone.adj = unpack_rows(packed)
        clone.alive = alive
        clone.num_edges = num_edges
        clone._packed = packed
        clone._narrow = None
        return clone

    def is_narrow(self) -> bool:
        """Whether every live vertex has degree ≤ :data:`NARROW_MAX_DEGREE`.

        The width-adaptive gate of the packed Extend kernels: narrow
        graphs (disjoint paths and cycles) keep every sweep frontier at
        ≤ 2 vertices, so :func:`packed_view` routes them back to the
        int-mask reference path.  The verdict is cached until the next
        mutation (``packed_view`` runs once per LB-Triang step, and a
        wide graph whose low-index vertices happen to form a long
        degree-2 tail would otherwise pay a near-full scan per call);
        on a miss, any vertex of higher degree exits the scan
        immediately, so the compute is O(1) on typical wide graphs and
        O(n) only for graphs that are narrow or nearly so.
        """
        narrow = self._narrow
        if narrow is None:
            adj = self.adj
            narrow = True
            for i in iter_bits(self.alive):
                if adj[i].bit_count() > NARROW_MAX_DEGREE:
                    narrow = False
                    break
            self._narrow = narrow
        return narrow

    # -- cache maintenance ---------------------------------------------

    def _matrix(self) -> np.ndarray:
        packed = self._packed
        if packed is None or packed.shape[0] != len(self.adj):
            packed = pack_masks(self.adj, word_count(len(self.adj)))
            self._packed = packed
        return packed

    def add_vertex(self, index: int | None = None) -> int:
        self._packed = None
        self._narrow = None
        return super().add_vertex(index)

    def remove_vertex(self, index: int) -> None:
        self._packed = None
        self._narrow = None
        super().remove_vertex(index)

    def add_edge(self, u: int, v: int) -> bool:
        self._packed = None
        self._narrow = None
        return super().add_edge(u, v)

    def remove_edge(self, u: int, v: int) -> bool:
        self._packed = None
        self._narrow = None
        return super().remove_edge(u, v)

    @staticmethod
    def _kernel_namespace():
        """The kernel namespace batch methods dispatch to.

        The numpy core answers this module; :class:`NativeGraphCore`
        overrides it with the compiled tier (see :func:`kernels_for`).
        """
        return sys.modules[__name__]

    def saturate(self, mask: int) -> list[tuple[int, int]]:
        """Make ``mask`` a clique, keeping the packed mirror live.

        Saturation is the one mutation the Extend pipeline performs in
        its hot loop (LB-Triang saturates one separator per component
        per step), so instead of dropping the packed matrix — which
        would force a full O(n · words) rebuild before the next sweep —
        the added bits are applied to it in place.  With a live matrix
        and a wide clique the missing pairs are found by the
        vectorized :func:`saturate_batch` kernel; the inherited
        int-mask scan remains the reference path.
        """
        # Saturation raises degrees, which can flip a narrow graph
        # wide; drop the cached gate verdict like every other mutator.
        self._narrow = None
        packed = self._packed
        if packed is not None and packed.shape[0] != len(self.adj):
            packed = self._packed = None
        if packed is None:
            return super().saturate(mask)
        if not packed.flags.writeable:
            # Shared (or otherwise read-only) mirror: detach onto a
            # private copy before the first in-place fill — sharded
            # workers must never write into the coordinator's segment.
            packed = self._packed = packed.copy()
        kernels = self._kernel_namespace()
        if mask.bit_count() < self._MIN_GATHER:
            added = super().saturate(mask)
            if added:
                u_arr = np.fromiter(
                    (u for u, __ in added), dtype=np.int64, count=len(added)
                )
                v_arr = np.fromiter(
                    (v for __, v in added), dtype=np.int64, count=len(added)
                )
                kernels.set_edge_bits(packed, u_arr, v_arr)
            return added
        u_arr, v_arr = kernels.saturate_batch(packed, mask)
        if not u_arr.shape[0]:
            return []
        added = list(zip(u_arr.tolist(), v_arr.tolist()))
        adj = self.adj
        for u, v in added:
            adj[u] |= 1 << v
            adj[v] |= 1 << u
        self.num_edges += len(added)
        kernels.set_edge_bits(packed, u_arr, v_arr)
        return added

    # -- batch-accelerated queries -------------------------------------

    def neighborhood_of_set(self, mask: int) -> int:
        if mask.bit_count() < self._MIN_GATHER:
            return super().neighborhood_of_set(mask)
        kernels = self._kernel_namespace()
        matrix = self._matrix()
        return (
            kernels.union_rows(
                matrix, kernels.mask_to_indices(mask, matrix.shape[1])
            )
            & ~mask
        )

    def expand_component(self, seed: int, available: int) -> int:
        return self._kernel_namespace().frontier_sweep(
            self._matrix(), seed, available, adj=self.adj
        )

    def missing_pair_count(self, mask: int) -> int:
        # Only route through a mirror that is already live: rebuilding
        # the matrix for one count would cost more than the scan saves
        # (mutation-heavy callers like the elimination game invalidate
        # it every step).
        matrix = self._packed
        k = mask.bit_count()
        if (
            matrix is None
            or matrix.shape[0] != len(self.adj)
            or k < self._MIN_GATHER
        ):
            return super().missing_pair_count(mask)
        present = self._kernel_namespace().clique_present_sum(matrix, mask)
        return k * (k - 1) // 2 - present // 2

    # -- derived graphs keep the numpy core ----------------------------

    def copy(self) -> "NumpyGraphCore":
        return type(self)._adopt(super().copy())

    def subgraph(self, mask: int) -> "NumpyGraphCore":
        return type(self)._adopt(super().subgraph(mask))

    def complement(self) -> "NumpyGraphCore":
        return type(self)._adopt(super().complement())


#: The graph-core backend registry: name → core class.  The native tier
#: registers itself here when importable (see the bottom of this module).
GRAPH_BACKENDS: dict[str, type[IndexedGraph]] = {
    "indexed": IndexedGraph,
    "numpy": NumpyGraphCore,
}


def kernels_for(core) -> "object":
    """The kernel namespace serving a graph core.

    The chordal layer and the separator graph call module-level kernels
    (``crossing_batch``, ``weight_level_rows``, ``PackedMCSQueue``, …)
    keyed only on the packed matrix; this is the per-core dispatch
    point that lets :class:`NativeGraphCore` route the *same* call
    sites onto the compiled tier.  Cores without an opinion (plain
    :class:`~repro.graph.core.IndexedGraph`, or a mock in tests) get
    this module — the numpy reference tier.
    """
    namespace = getattr(core, "_kernel_namespace", None)
    if namespace is None:
        return sys.modules[__name__]
    return namespace()


def _native_core_class() -> "type[NumpyGraphCore] | None":
    """The registered native core class, or ``None`` when the compiled
    extension is unregistered or cannot actually be loaded."""
    native_cls = GRAPH_BACKENDS.get("native")
    if native_cls is not None and native_cls.runtime_available():
        return native_cls
    return None


def select_core_class(
    num_nodes: int,
    backend: str = "auto",
    threshold: int = NUMPY_THRESHOLD,
) -> type[IndexedGraph]:
    """Resolve a backend name to a core class.

    ``"auto"`` picks the packed tier at or above ``threshold`` nodes —
    the native core when its compiled extension is available, else
    :class:`NumpyGraphCore` — and
    :class:`~repro.graph.core.IndexedGraph` below it.  An explicit
    ``"native"`` request likewise degrades to :class:`NumpyGraphCore`
    when the extension cannot be built or loaded (same kernels, same
    results, no hard failure); ``repro kernels`` reports the tier that
    will actually serve.
    """
    if backend == "auto":
        if num_nodes < threshold:
            return IndexedGraph
        return _native_core_class() or NumpyGraphCore
    try:
        selected = GRAPH_BACKENDS[backend]
    except KeyError:
        known = ", ".join(["auto", *sorted(GRAPH_BACKENDS)])
        raise ValueError(
            f"unknown graph backend {backend!r} (known: {known})"
        ) from None
    if backend == "native" and not selected.runtime_available():
        return NumpyGraphCore
    return selected


def core_backend_name(core: IndexedGraph) -> str:
    """The registry name of a core instance's backend."""
    for name, backend_cls in GRAPH_BACKENDS.items():
        if type(core) is backend_cls:
            return name
    return "numpy" if isinstance(core, NumpyGraphCore) else "indexed"


def packed_view(core: IndexedGraph) -> np.ndarray | None:
    """The packed adjacency matrix of a numpy-backed core, else ``None``.

    This is the dispatch point of the Extend-side kernels: the chordal
    layer (MCS-M, LB-Triang, the PEO check, the clique-forest scan)
    asks for a packed view and routes onto the word-matrix kernels
    when one exists, keeping the int-mask implementations as the
    reference oracles for plain :class:`~repro.graph.core.IndexedGraph`
    cores.  The returned matrix is the core's live mirror — treat it
    as read-only and do not hold it across mutations.

    The call is also the *width-adaptive gate*: a numpy-backed core
    whose live graph is narrow (:meth:`NumpyGraphCore.is_narrow` —
    disjoint paths/cycles, frontier width ≤ 2) answers ``None`` so deep
    narrow inputs run the int-mask path and skip the ~10 % per-round
    packed-dispatch overhead they could never amortise.  The gate only
    steers kernel selection; both paths compute identical results.
    """
    if isinstance(core, NumpyGraphCore) and not core.is_narrow():
        return core._matrix()
    return None


def convert_graph(graph, backend: str = "auto", threshold: int = NUMPY_THRESHOLD):
    """Return ``graph`` on the selected core backend.

    The input is returned unchanged when its core already matches the
    selection; otherwise a copy with an identical interner — and
    therefore identical vertex indices, so every mask computed against
    one is valid against the other — is returned.  ``"auto"`` only ever
    *upgrades* a plain indexed core at or above ``threshold`` nodes; a
    core the caller explicitly placed on another backend is respected.
    """
    from repro.graph.graph import Graph

    core = graph.core
    if backend == "auto" and type(core) is not IndexedGraph:
        return graph
    target = select_core_class(graph.num_nodes, backend, threshold)
    if type(core) is target:
        return graph
    if target is IndexedGraph:
        plain = IndexedGraph.__new__(IndexedGraph)
        plain.adj = list(core.adj)
        plain.alive = core.alive
        plain.num_edges = core.num_edges
        return Graph._from_parts(plain, graph.interner.copy())
    return Graph._from_parts(target.from_indexed(core), graph.interner.copy())


# Registering the native tier happens in the native module itself (its
# import is what defines the class); a bare import here keeps the cycle
# safe in both orders, and any failure simply leaves the registry at
# two tiers — the native backend must never break the numpy one.
try:
    import repro.graph._native.native  # noqa: F401  (self-registers)
except Exception:  # pragma: no cover - torn install
    pass
