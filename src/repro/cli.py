"""Command-line interface (``python -m repro``).

Subcommands:

* ``enumerate`` — stream the minimal triangulations of a graph file,
  optionally exporting the best tree decomposition in PACE ``.td``
  format; ``--backend sharded --workers N`` partitions the answer
  queue across a multiprocessing pool, ``--checkpoint``/``--resume``
  persist the enumeration state across interruptions, and
  ``--graph-backend`` picks the graph-core representation (int
  bitmasks / packed numpy word matrices / size-adaptive ``auto``);
  ``--backend distributed --listen HOST:PORT`` coordinates TCP
  workers instead of a local pool;
* ``worker``     — join a distributed enumeration as a compute host:
  ``repro worker --connect HOST:PORT`` handshakes with the
  coordinator, receives the packed graph once, and serves batches
  until the job ends (reconnecting with bounded backoff on failures);
* ``separators`` — stream the minimal separators;
* ``stats``      — structural summary (size, chordality, atoms,
  separator count);
* ``tpch``       — run the TPC-H query experiment table;
* ``kernels``    — diagnose the graph-kernel tiers (compiler and
  native-build availability, which tier serves each kernel).

Graph files are auto-detected by extension or forced with ``--format``:
``edgelist`` (``u v`` lines), ``dimacs`` (``p edge``), ``pace``
(``p tw``) or ``uai`` (UAI model preamble → primal graph).
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time
from pathlib import Path

from repro.chordal.atoms import atoms
from repro.chordal.minimal_separators import minimal_separators
from repro.chordal.peo import is_chordal
from repro.chordal.triangulate import available_triangulators
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.decomposition.io import write_pace_td
from repro.graph.graph import Graph
from repro.graph.io import (
    read_dimacs,
    read_edge_list,
    read_pace_graph,
    read_uai_model,
)

__all__ = ["main", "build_parser", "load_graph"]

_READERS = {
    "edgelist": read_edge_list,
    "dimacs": read_dimacs,
    "pace": read_pace_graph,
    "uai": read_uai_model,
}

_EXTENSIONS = {
    ".edges": "edgelist",
    ".edgelist": "edgelist",
    ".txt": "edgelist",
    ".col": "dimacs",
    ".dimacs": "dimacs",
    ".gr": "pace",
    ".uai": "uai",
}


def load_graph(path: str, fmt: str | None = None) -> Graph:
    """Load a graph file, inferring the format from the extension."""
    if fmt is None:
        fmt = _EXTENSIONS.get(Path(path).suffix.lower())
        if fmt is None:
            raise ValueError(
                f"cannot infer format from {path!r}; pass --format"
            )
    try:
        reader = _READERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; choose from {sorted(_READERS)}"
        ) from None
    return reader(path)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Enumerate minimal triangulations and proper tree "
        "decompositions (Carmeli et al., PODS 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help="path to the input graph file")
        p.add_argument(
            "--format",
            choices=sorted(_READERS),
            help="input format (default: by file extension)",
        )

    enum = sub.add_parser(
        "enumerate", help="enumerate minimal triangulations"
    )
    add_graph_arguments(enum)
    enum.add_argument(
        "--triangulator",
        default="mcs_m",
        choices=available_triangulators(),
        help="heuristic plugged into Extend (default: mcs_m)",
    )
    enum.add_argument(
        "--budget", type=float, default=None, help="wall-clock budget in seconds"
    )
    enum.add_argument(
        "--max-results", type=int, default=None, help="stop after this many results"
    )
    enum.add_argument(
        "--decompose",
        default="components",
        choices=("none", "components", "atoms"),
        help="split the input before enumerating (default: components)",
    )
    enum.add_argument(
        "--mode",
        default="UG",
        choices=("UG", "UP"),
        help="EnumMIS printing discipline: yield upon generation (UG, "
        "default) or upon pop (UP); ranked runs always use UP",
    )
    enum.add_argument(
        "--rank",
        default=None,
        choices=("width", "fill"),
        help="drain the answer queue best-first by this cost "
        "(default: unranked generation order)",
    )
    enum.add_argument(
        "--show-fill",
        action="store_true",
        help="print the fill edges of every triangulation",
    )
    enum.add_argument(
        "--td-out",
        default=None,
        help="write the best-width tree decomposition here (PACE .td)",
    )
    enum.add_argument(
        "--backend",
        default="serial",
        help="execution backend: serial, sharded or distributed "
        "(default: serial)",
    )
    enum.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded backend (default: one per CPU)",
    )
    enum.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="with --backend distributed: accept TCP workers here "
        "(port 0 picks a free port; the bound address is printed). "
        "Start hosts with `repro worker --connect HOST:PORT`",
    )
    enum.add_argument(
        "--expected-workers",
        type=int,
        default=None,
        metavar="N",
        help="with --backend distributed: fleet size batches are sized "
        "for (default: 1).  Membership stays elastic — workers may "
        "join or leave at any point of the job",
    )
    enum.add_argument(
        "--pending-timeout",
        type=float,
        default=None,
        metavar="S",
        help="with --backend distributed: fail instead of waiting "
        "forever when batches sit pending with no worker connected "
        "for this many seconds (default: wait indefinitely)",
    )
    enum.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="S",
        help="with --backend distributed: worker heartbeat cadence in "
        "seconds (default: 2).  Liveness and pending-timeout sweeps "
        "tick at this interval, so --pending-timeout must exceed it",
    )
    enum.add_argument(
        "--heartbeat-misses",
        type=float,
        default=None,
        metavar="N",
        help="with --backend distributed: heartbeat windows a worker "
        "may miss before it is declared dead and its batches are "
        "requeued (default: 3)",
    )
    enum.add_argument(
        "--max-batch-retries",
        type=int,
        default=None,
        metavar="N",
        help="times one failed batch may be redispatched (worker "
        "death, watchdog abort) before the coordinator splits it in "
        "half and finally quarantines it — re-driving the pairs "
        "serially under a hard budget (default: 3)",
    )
    enum.add_argument(
        "--batch-deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-batch wall-clock ceiling enforced inside each "
        "sharded worker by the cooperative resource watchdog; a "
        "breached batch fails typed (the worker survives) and enters "
        "the retry/split/quarantine ladder (default: unlimited)",
    )
    enum.add_argument(
        "--batch-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="per-batch worker RSS ceiling in MiB, enforced like "
        "--batch-deadline (default: unlimited)",
    )
    enum.add_argument(
        "--wait-workers",
        type=float,
        default=60.0,
        metavar="S",
        help="with --backend distributed: wait up to this long for "
        "--expected-workers hosts to join before dispatching batches "
        "(default: 60).  On timeout the job proceeds with whoever "
        "joined — membership stays elastic either way; 0 starts "
        "dispatching immediately",
    )
    enum.add_argument(
        "--batch-target-ms",
        type=float,
        default=None,
        metavar="MS",
        help="target worker-compute duration of one sharded task batch "
        "in milliseconds (default: 100).  The coordinator learns the "
        "per-answer extend cost as the run progresses and sizes "
        "batches to this duration; smaller values give finer-grained "
        "work stealing and cheaper interrupts, larger values amortise "
        "more per-batch IPC overhead.  The enumerated answer set is "
        "identical for every value",
    )
    enum.add_argument(
        "--graph-backend",
        default="auto",
        choices=("auto", "indexed", "numpy", "native"),
        help="graph-core representation: int bitmasks, packed numpy "
        "word matrices, compiled C kernels over the same matrices, or "
        "by size (default: auto — packed tier above the size "
        "threshold, native preferred when its extension builds).  The "
        "choice also selects the Extend kernels: on the packed tiers "
        "every --triangulator heuristic (MCS-M, LB-Triang, the PEO "
        "check, the clique-forest separator extraction) runs on "
        "word-matrix sweeps; on the indexed core the int-mask "
        "reference paths run instead.  'native' degrades to numpy "
        "when no C compiler is available (see 'repro kernels')",
    )
    enum.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="persist the (Q, P, V) enumeration state to this file; "
        "disconnected and atom-split graphs store one section per "
        "region plus the cross-region product state",
    )
    enum.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="persist the checkpoint after every N newly generated "
        "answers, plus once on stream close (default: 64).  Lower "
        "values shrink the window a hard kill can lose; a graceful "
        "interrupt (SIGINT/SIGTERM) always saves on the way out",
    )
    enum.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint instead of starting fresh",
    )

    work = sub.add_parser(
        "worker",
        help="join a distributed enumeration as a TCP compute host",
    )
    work.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (the enumerate side's --listen)",
    )
    work.add_argument(
        "--max-retries",
        type=int,
        default=8,
        metavar="N",
        help="consecutive failed connection attempts before giving up "
        "(default: 8; exponential backoff between attempts)",
    )
    work.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="per-attempt connection/handshake timeout in seconds "
        "(default: 5)",
    )
    work.add_argument(
        "--batch-deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-batch wall-clock ceiling enforced by this worker's "
        "resource watchdog; a breached batch is aborted cooperatively "
        "and reported to the coordinator as BATCH_FAILED — the worker "
        "stays in the fleet (default: unlimited)",
    )
    work.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="per-batch RSS ceiling in MiB, enforced like "
        "--batch-deadline (default: unlimited)",
    )
    work.add_argument(
        "--chaos-spec",
        default=None,
        metavar="SPEC",
        help="fault injection (testing only): perturb this worker's "
        "connection with a deterministic schedule of frame drops, "
        "delays, duplicates, resets and corruption, e.g. "
        "'seed=7,drop=0.05'.  Also honoured from the REPRO_CHAOS_SPEC "
        "/ REPRO_CHAOS_SEED environment variables",
    )

    seps = sub.add_parser("separators", help="enumerate minimal separators")
    add_graph_arguments(seps)
    seps.add_argument(
        "--limit", type=int, default=None, help="stop after this many separators"
    )

    stats = sub.add_parser("stats", help="structural summary of a graph")
    add_graph_arguments(stats)
    stats.add_argument(
        "--separator-cap",
        type=int,
        default=10_000,
        help="cap on the separator count (default 10000)",
    )

    tpch = sub.add_parser("tpch", help="run the TPC-H query experiment")
    tpch.add_argument(
        "--cap", type=int, default=2000, help="per-query result cap (default 2000)"
    )

    tw = sub.add_parser(
        "treewidth",
        help="anytime treewidth: best-first search with a lower-bound stop",
    )
    add_graph_arguments(tw)
    tw.add_argument(
        "--budget", type=float, default=None, help="wall-clock budget in seconds"
    )
    tw.add_argument(
        "--max-results",
        type=int,
        default=None,
        help="cap on examined triangulations",
    )
    tw.add_argument(
        "--td-out",
        default=None,
        help="write the best tree decomposition here (PACE .td)",
    )

    rep = sub.add_parser(
        "report", help="regenerate all experiment artefacts in one run"
    )
    rep.add_argument(
        "--budget", type=float, default=1.0, help="per-graph budget in seconds"
    )
    rep.add_argument(
        "--scale", type=float, default=0.06, help="dataset scale fraction"
    )

    sub.add_parser(
        "kernels",
        help="diagnose the graph-kernel tiers (compiler, native build, "
        "which tier serves each kernel)",
    )

    ana = sub.add_parser(
        "analyze",
        help="run the repo-specific static invariant checks "
        "(registry completeness, protocol dispatch, kernel parity, ...)",
    )
    ana.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="source roots to analyze (default: the installed repro "
        "package)",
    )
    ana.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any finding survives suppressions",
    )
    ana.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="report format (default: text)",
    )
    ana.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    ana.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


class _GracefulStop:
    """First SIGINT/SIGTERM sets a flag, the second interrupts hard.

    The enumerate loop checks the flag *after* printing each answer,
    so a graceful stop never swallows the answer that was mid-handover
    when the signal landed — the checkpoint's "delivered" set and the
    answers the user actually saw stay in exact agreement, which is
    what makes ``--resume`` yield precisely the remainder.  A blocked
    or impatient run can still be interrupted with a second signal
    (ordinary KeyboardInterrupt; the ``finally`` teardown still saves
    the checkpoint).
    """

    def __init__(self) -> None:
        self.signum: int | None = None

    def install(self) -> None:
        import signal

        def handler(signum, frame):
            if self.signum is not None:
                raise KeyboardInterrupt
            self.signum = signum

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(sig, handler)
            except ValueError:  # pragma: no cover - non-main thread
                pass


def _graceful_sigterm() -> None:
    """Turn SIGTERM into KeyboardInterrupt for checkpoint-safe exits."""
    import signal

    def handler(signum, frame):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass


def _command_enumerate(args: argparse.Namespace) -> int:
    from repro.engine import EnumerationEngine, EnumerationJob
    from repro.sgr.enum_mis import EnumMISStatistics

    graph = load_graph(args.graph, args.format)
    print(f"{graph.summary()}; chordal: {is_chordal(graph)}")
    stop = _GracefulStop()
    stop.install()
    backend = args.backend
    if backend == "distributed":
        from repro.engine.distributed import DistributedBackend

        distributed_kwargs = {}
        if args.heartbeat_interval is not None:
            distributed_kwargs["heartbeat_s"] = args.heartbeat_interval
        if args.heartbeat_misses is not None:
            distributed_kwargs["liveness_windows"] = args.heartbeat_misses
        if args.max_batch_retries is not None:
            distributed_kwargs["max_batch_retries"] = args.max_batch_retries
        backend = DistributedBackend(
            listen=args.listen,
            expected_workers=args.expected_workers or 1,
            pending_timeout_s=args.pending_timeout,
            wait_for_workers_s=(
                args.wait_workers if args.wait_workers > 0 else None
            ),
            **distributed_kwargs,
            on_listening=lambda addr: print(
                f"coordinator listening on {addr[0]}:{addr[1]} — start "
                f"workers with: repro worker --connect {addr[0]}:{addr[1]}",
                flush=True,
            ),
        )
    elif args.listen is not None:
        print(
            "warning: --listen is only meaningful with --backend "
            "distributed; ignoring",
            file=sys.stderr,
        )
    engine = EnumerationEngine(backend, workers=args.workers)
    job_kwargs = {}
    if args.batch_target_ms is not None:
        job_kwargs["batch_target_ms"] = args.batch_target_ms
    if args.checkpoint_every is not None:
        job_kwargs["checkpoint_every"] = args.checkpoint_every
    if args.max_batch_retries is not None:
        job_kwargs["max_batch_retries"] = args.max_batch_retries
    if args.batch_deadline is not None:
        job_kwargs["batch_deadline_s"] = args.batch_deadline
    if args.batch_rss_mb is not None:
        job_kwargs["batch_rss_limit_mb"] = args.batch_rss_mb
    job = EnumerationJob(
        graph,
        mode=args.mode,
        triangulator=args.triangulator,
        decompose=args.decompose,
        cost=args.rank,
        max_results=args.max_results,
        time_budget=args.budget,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        graph_backend=args.graph_backend,
        **job_kwargs,
    )
    best = None
    count = 0
    interrupted = False
    start = time.monotonic()
    stats = EnumMISStatistics()
    stream = engine.stream(job, stats)
    try:
        for t in stream:
            count += 1
            elapsed = time.monotonic() - start
            line = f"[{elapsed:8.3f}s] #{count} width={t.width} fill={t.fill}"
            if args.show_fill:
                line += f" edges={list(t.fill_edges)}"
            # Flushed per answer: a checkpoint save marks an answer
            # delivered only after its yield returns, so flushing here
            # guarantees every delivered answer is observable on stdout
            # even if the coordinator is SIGKILLed right afterwards.
            print(line, flush=True)
            if best is None or t.width < best.width:
                best = t
            if stop.signum is not None:
                interrupted = True
                break
            if args.max_results is not None and count >= args.max_results:
                print(f"stopping: reached --max-results {args.max_results}")
                break
            if args.budget is not None and elapsed >= args.budget:
                print(f"stopping: exhausted --budget {args.budget}s")
                break
        else:
            print("enumeration complete")
    except KeyboardInterrupt:
        interrupted = True
    finally:
        # Releases the worker pool (or TCP fleet) and, when
        # --checkpoint is given, persists the final enumeration state.
        stream.close()
    if interrupted:
        where = (
            f"state saved to {args.checkpoint}; rerun with --resume"
            if args.checkpoint
            else "state not checkpointed (pass --checkpoint to resume)"
        )
        print(f"\ninterrupted after {count} results; {where}")
    if best is None:
        print("0 minimal triangulations (resumed run already complete?)")
        return 130 if interrupted else 0
    print(f"{count} minimal triangulations; best width {best.width}")
    supervision = []
    if stats.batch_retries:
        supervision.append(f"{stats.batch_retries} batch retries")
    if stats.batches_quarantined:
        supervision.append(
            f"{stats.batches_quarantined} quarantined "
            f"({stats.poison_answers} answers salvaged serially)"
        )
    if stats.protocol_rejections:
        supervision.append(
            f"{stats.protocol_rejections} protocol rejections"
        )
    if supervision:
        # A correct answer set that needed salvage is worth knowing
        # about — mirror result.summary()'s supervision clause here.
        print("supervision: " + ", ".join(supervision))
    if args.td_out is not None:
        decomposition = best.tree_decomposition()
        write_pace_td(decomposition, graph, args.td_out)
        print(f"wrote best tree decomposition to {args.td_out}")
    return 130 if interrupted else 0


def _command_worker(args: argparse.Namespace) -> int:
    import os

    from repro.engine.distributed.chaos import ChaosInjector, ChaosSpec
    from repro.engine.distributed.protocol import parse_address
    from repro.engine.distributed.worker import WorkerConfig, run_worker
    from repro.engine.pool import poison_from_env
    from repro.engine.watchdog import BatchLimits

    _graceful_sigterm()
    address = parse_address(args.connect)
    if args.chaos_spec is not None:
        chaos_spec = ChaosSpec.parse(args.chaos_spec)
    else:
        chaos_spec = ChaosSpec.from_env(os.environ)
    config = WorkerConfig(
        connect_timeout_s=args.connect_timeout,
        max_retries=args.max_retries,
        limits=BatchLimits.from_cli(args.batch_deadline, args.max_rss_mb),
        poison=poison_from_env(),
        chaos=(
            ChaosInjector(chaos_spec) if chaos_spec is not None else None
        ),
    )
    try:
        return run_worker(address, config)
    except KeyboardInterrupt:
        print("\n[repro-worker] interrupted; leaving the fleet",
              file=sys.stderr)
        return 130


def _command_separators(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.format)
    iterator = minimal_separators(graph)
    if args.limit is not None:
        iterator = itertools.islice(iterator, args.limit)
    count = 0
    for separator in iterator:
        count += 1
        print(" ".join(str(v) for v in sorted(separator, key=repr)))
    print(f"# {count} minimal separators", file=sys.stderr)
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, args.format)
    chordal = is_chordal(graph)
    print(f"nodes:    {graph.num_nodes}")
    print(f"edges:    {graph.num_edges}")
    print(f"chordal:  {'yes' if chordal else 'no'}")
    graph_atoms = atoms(graph)
    print(f"atoms:    {len(graph_atoms)} (sizes: "
          f"{sorted((len(a) for a in graph_atoms), reverse=True)[:10]})")
    capped = list(
        itertools.islice(minimal_separators(graph), args.separator_cap + 1)
    )
    if len(capped) > args.separator_cap:
        print(f"minseps:  > {args.separator_cap} (capped)")
    else:
        print(f"minseps:  {len(capped)}")
    return 0


def _command_tpch(args: argparse.Namespace) -> int:
    from repro.workloads.tpch import tpch_suite

    print("query  n   m   chordal  #mintri  time(s)")
    for name, graph in tpch_suite():
        start = time.monotonic()
        count = 0
        for __ in enumerate_minimal_triangulations(graph):
            count += 1
            if count >= args.cap:
                break
        elapsed = time.monotonic() - start
        print(
            f"{name:<6} {graph.num_nodes:<3} {graph.num_edges:<3} "
            f"{'yes' if is_chordal(graph) else 'no':<8} {count:<8} {elapsed:.2f}"
        )
    return 0


def _command_treewidth(args: argparse.Namespace) -> int:
    from repro.core.bounds import treewidth_lower_bound
    from repro.core.ranked import anytime_treewidth

    graph = load_graph(args.graph, args.format)
    lower = treewidth_lower_bound(graph)
    print(f"{graph.summary()}; lower bound {lower}")
    width, best, optimal = anytime_treewidth(
        graph, time_budget=args.budget, max_results=args.max_results
    )
    certainty = "exact" if optimal else "upper bound"
    print(f"treewidth {certainty}: {width}")
    if args.td_out is not None:
        write_pace_td(best.tree_decomposition(), graph, args.td_out)
        print(f"wrote tree decomposition to {args.td_out}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import full_report

    print(full_report(budget=args.budget, scale=args.scale))
    return 0


def _command_kernels(args: argparse.Namespace) -> int:
    """Print which kernel tier serves, and why (or why not)."""
    try:
        from repro.graph import bitset_np as _bitset
    except ImportError:
        print("numpy            : not installed")
        print("active tier      : indexed (int-mask reference paths)")
        return 0
    import numpy as np

    print(f"numpy            : {np.__version__}")
    print(f"registered       : {', '.join(sorted(_bitset.GRAPH_BACKENDS))}")
    try:
        from repro.graph._native import native
    except ImportError as exc:  # pragma: no cover - torn install
        print(f"native tier      : unavailable ({exc})")
        print("active tier      : numpy")
        return 0
    info = native.kernel_info()
    print(f"compiler         : {info['compiler_id'] or info['compiler'] or 'none found'}")
    if info["artifact"]:
        state = "built" if info["built"] else "not built yet"
        print(f"build artifact   : {info['artifact']} ({state})")
    if info["available"]:
        print("native tier      : available")
    else:
        print(f"native tier      : unavailable ({info['reason']})")
    active = "native" if info["available"] else "numpy"
    print(f"active tier      : {active} (auto above "
          f"{_bitset.NUMPY_THRESHOLD} nodes; force with --graph-backend)")
    print("kernels:")
    for name, tier in sorted(info["kernels"].items()):
        print(f"  {name:<22} {tier}")
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    """Run the static invariant battery; exit 1 on findings in --strict."""
    from repro.analysis import (
        all_rules,
        render_json,
        render_text,
        run_analysis,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        import repro

        paths = [Path(repro.__file__).resolve().parent]
    try:
        findings = run_analysis(paths, rule_ids=args.rule)
    except (KeyError, NotADirectoryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, verbose=True))
    return 1 if (findings and args.strict) else 0


_COMMANDS = {
    "enumerate": _command_enumerate,
    "worker": _command_worker,
    "separators": _command_separators,
    "stats": _command_stats,
    "tpch": _command_tpch,
    "treewidth": _command_treewidth,
    "report": _command_report,
    "kernels": _command_kernels,
    "analyze": _command_analyze,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.engine import EngineError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, OSError, EngineError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
