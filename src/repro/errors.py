"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch one base class.  The
sub-classes are grouped by the subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node was referenced that is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge {{{u!r}, {v!r}}} is not in the graph")
        self.edge = (u, v)


class SelfLoopError(GraphError, ValueError):
    """An edge with identical endpoints was supplied.

    The graphs in this library model the undirected, simple graphs of
    the paper; self loops are meaningless for separators and
    triangulations and are rejected at the boundary.
    """

    def __init__(self, node: object) -> None:
        super().__init__(f"self loops are not allowed (node {node!r})")
        self.node = node


class NotChordalError(ReproError, ValueError):
    """An operation that requires a chordal graph received a non-chordal one."""


class NotATriangulationError(ReproError, ValueError):
    """A graph supplied as a triangulation does not triangulate the base graph."""


class NotASeparatorError(ReproError, ValueError):
    """A vertex set supplied as a minimal separator is not one."""


class NotAnIndependentSetError(ReproError, ValueError):
    """A node set supplied as an independent set of an SGR is not independent."""


class InvalidTreeDecompositionError(ReproError, ValueError):
    """A tree decomposition violates one of its three defining properties."""


class ParseError(ReproError, ValueError):
    """A graph file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class EnumerationBudgetExceeded(ReproError):
    """An enumeration exceeded its configured safety budget.

    Raised only when the caller opted into a hard budget (for example a
    maximum number of produced answers in an exhaustive baseline); the
    incremental-polynomial-time enumerators themselves never raise this.
    """
