"""Synthetic instances for the TPC-H query hypergraphs (part of S25).

The paper evaluates decomposition *structure*; the join engine in
:mod:`repro.db` additionally needs data.  This module generates
deterministic synthetic relations for any query hypergraph, with
key/foreign-key-flavoured skew: join variables draw from Zipf-like
distributions so that different decompositions produce genuinely
different intermediate sizes (the phenomenon of experiment E12).
"""

from __future__ import annotations

import random

from repro.db.relation import Relation
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["instance_for", "tpch_instance"]


def _zipf_value(rng: random.Random, domain: int, skew: float) -> int:
    """Draw from {0..domain-1} with probability ∝ 1/(rank+1)^skew."""
    weights = [(rank + 1) ** -skew for rank in range(domain)]
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for value, weight in enumerate(weights):
        cumulative += weight
        if point <= cumulative:
            return value
    return domain - 1


def instance_for(
    hypergraph: Hypergraph,
    rows_per_relation: int = 50,
    domain: int = 20,
    skew: float = 0.8,
    seed: int = 0,
) -> dict[str, Relation]:
    """Generate one relation per hyperedge of ``hypergraph``.

    Attribute values are Zipf-skewed over a shared per-variable domain,
    so join variables correlate across relations and joins are
    selective but non-empty.  Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    instance: dict[str, Relation] = {}
    for name in hypergraph.edge_names():
        scope = tuple(sorted(map(str, hypergraph.edge(name))))
        rows = {
            tuple(_zipf_value(rng, domain, skew) for __ in scope)
            for __ in range(rows_per_relation)
        }
        instance[name] = Relation(scope, rows)
    return instance


def tpch_instance(
    query: str,
    rows_per_relation: int = 50,
    domain: int = 20,
    seed: int = 0,
) -> tuple[Hypergraph, dict[str, Relation]]:
    """Return ``(hypergraph, instance)`` for TPC-H query ``query``."""
    from repro.workloads.tpch import tpch_hypergraph

    hypergraph = tpch_hypergraph(query)
    return hypergraph, instance_for(
        hypergraph, rows_per_relation=rows_per_relation, domain=domain, seed=seed
    )
