"""Benchmark workloads: synthetic PGM suites, TPC-H queries, random sweeps."""

from repro.workloads.pgm import (
    csp_like,
    csp_suite,
    grid_suite,
    object_detection_like,
    object_detection_suite,
    pedigree_like,
    pedigree_suite,
    pgm_suites,
    promedas_like,
    promedas_suite,
    segmentation_like,
    segmentation_suite,
)
from repro.workloads.random_graphs import (
    PAPER_DENSITIES,
    PAPER_NODE_COUNTS,
    random_sweep,
)
from repro.workloads.tpch import tpch_hypergraph, tpch_query, tpch_query_names, tpch_suite
from repro.workloads.tpch_data import instance_for, tpch_instance

__all__ = [
    "promedas_like",
    "promedas_suite",
    "object_detection_like",
    "object_detection_suite",
    "segmentation_like",
    "segmentation_suite",
    "pedigree_like",
    "pedigree_suite",
    "csp_like",
    "csp_suite",
    "grid_suite",
    "pgm_suites",
    "random_sweep",
    "PAPER_DENSITIES",
    "PAPER_NODE_COUNTS",
    "tpch_query",
    "tpch_hypergraph",
    "instance_for",
    "tpch_instance",
    "tpch_query_names",
    "tpch_suite",
]
