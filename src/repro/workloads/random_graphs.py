"""The Erdős–Rényi random-graph sweep of the paper (part of S25).

Section 6.1.3: 54 random G(n, p) graphs with n between 30 and 200 and
p ∈ {0.3, 0.5, 0.7}.  We reproduce the grid exactly: 18 node counts
(30, 40, …, 200) × 3 densities.  The helper accepts bounds so the
scaled-down benchmarks can run a sub-grid.
"""

from __future__ import annotations

from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph

__all__ = ["random_sweep", "PAPER_DENSITIES", "PAPER_NODE_COUNTS"]

PAPER_DENSITIES = (0.3, 0.5, 0.7)
PAPER_NODE_COUNTS = tuple(range(30, 201, 10))


def random_sweep(
    node_counts: tuple[int, ...] = PAPER_NODE_COUNTS,
    densities: tuple[float, ...] = PAPER_DENSITIES,
    seed: int = 20170707,
) -> list[tuple[str, Graph, int, float]]:
    """Return ``[(name, graph, n, p), …]`` for the G(n, p) grid.

    With the default arguments this is the paper's 54-graph sweep.
    """
    sweep = []
    for p in densities:
        for n in node_counts:
            graph = gnp_random_graph(n, p, seed + n * 1000 + int(p * 100))
            sweep.append((f"gnp_n{n}_p{p:.1f}", graph, n, p))
    return sweep
