"""Synthetic probabilistic-graphical-model benchmark suites (part of S25).

The paper's Section 6 evaluates on six families of UAI-challenge
networks.  The original files are not redistributable, so each family
is substituted by a structure-matched synthetic generator producing
graphs in the same node/edge ranges with the same qualitative
structure (see DESIGN.md, "Dataset substitutions").  All generators
are deterministic in their ``seed``.

Suites mirror the paper's instance counts by default but accept a
``count`` parameter so the scaled-down benchmark harness can run a
subset.  Every suite function returns ``[(name, graph), …]``.
"""

from __future__ import annotations

import random

from repro.graph.generators import gnm_random_graph, grid_graph
from repro.graph.graph import Graph

__all__ = [
    "promedas_like",
    "object_detection_like",
    "segmentation_like",
    "pedigree_like",
    "csp_like",
    "grid_suite",
    "promedas_suite",
    "object_detection_suite",
    "segmentation_suite",
    "pedigree_suite",
    "csp_suite",
    "pgm_suites",
]


def promedas_like(num_diseases: int, num_findings: int, seed: int) -> Graph:
    """A layered noisy-or diagnostic network, moralised.

    Diseases form a hidden layer, findings an observed layer; each
    finding has 1–3 disease parents.  Moralisation connects each
    finding to its parents and the parents to each other — the same
    construction that turns the Promedas Bayesian networks into the
    paper's Markov networks.  Nodes are ``("d", i)`` and ``("f", j)``.
    """
    rng = random.Random(seed)
    graph = Graph(
        nodes=[("d", i) for i in range(num_diseases)]
        + [("f", j) for j in range(num_findings)]
    )
    for j in range(num_findings):
        num_parents = rng.randint(1, min(3, num_diseases))
        parents = rng.sample(range(num_diseases), num_parents)
        scope = [("d", p) for p in parents] + [("f", j)]
        graph.saturate(scope)
    return graph


def object_detection_like(seed: int) -> Graph:
    """A 60-node object-detection MRF with 135–180 edges.

    A 6×10 lattice backbone (local smoothness terms) plus random
    *short-range* compatibility edges (Chebyshev distance ≤ 2), the
    structure of object-detection Markov Random Fields — local enough
    that the treewidth stays in the single digits, matching the
    paper's reported widths (≈6) for this family.
    """
    rng = random.Random(seed)
    graph = grid_graph(6, 10)
    nodes = graph.nodes()
    candidates = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1 :]
        if not graph.has_edge(u, v)
        and max(abs(u[0] - v[0]), abs(u[1] - v[1])) <= 2
    ]
    rng.shuffle(candidates)
    target_edges = rng.randint(135, 180)
    for u, v in candidates:
        if graph.num_edges >= target_edges:
            break
        graph.add_edge(u, v)
    return graph


def segmentation_like(seed: int) -> Graph:
    """An image-segmentation network: triangulated lattice + background.

    A 15×15 superpixel lattice with one diagonal per cell (616 edges,
    225 nodes) plus 1–10 background/label nodes each attached to a few
    random superpixels, landing in the paper's 226–235 node / 617–647
    edge band.
    """
    rng = random.Random(seed)
    graph = grid_graph(15, 15)
    for r in range(14):
        for c in range(14):
            if rng.random() < 0.5:
                graph.add_edge((r, c), (r + 1, c + 1))
            else:
                graph.add_edge((r + 1, c), (r, c + 1))
    num_background = rng.randint(1, 10)
    cells = graph.nodes()
    for b in range(num_background):
        background = ("bg", b)
        graph.add_node(background)
        for cell in rng.sample(cells, rng.randint(2, 3)):
            graph.add_edge(background, cell)
    return graph


def pedigree_like(
    seed: int, num_founders: int = 75, num_children: int = 310
) -> Graph:
    """A moralised pedigree Bayesian network (genetic linkage).

    Founders have no parents; every other individual has two parents
    drawn from earlier individuals.  Moralisation yields two
    child–parent edges plus one parent–parent marriage edge per child,
    which for the default sizes gives ≈385 nodes and ≈930 edges — the
    paper's pedigree dimensions.
    """
    rng = random.Random(seed)
    total = num_founders + num_children
    graph = Graph(nodes=range(total))
    for child in range(num_founders, total):
        father, mother = rng.sample(range(child), 2)
        graph.add_edge(child, father)
        graph.add_edge(child, mother)
        if not graph.has_edge(father, mother):
            graph.add_edge(father, mother)
    return graph


def csp_like(num_variables: int, num_constraints: int, seed: int) -> Graph:
    """A binary CSP primal graph: uniformly random constraint scopes."""
    return gnm_random_graph(num_variables, num_constraints, seed)


# ----------------------------------------------------------------------
# Suites (paper Section 6.1.3 instance counts by default)
# ----------------------------------------------------------------------


def promedas_suite(count: int = 33, seed: int = 20170101) -> list[tuple[str, Graph]]:
    """Promedas-like graphs spanning 26–1039 nodes / 36–1696 edges."""
    suite = []
    for index in range(count):
        fraction = index / max(count - 1, 1)
        num_diseases = int(round(10 + fraction * 390))
        num_findings = int(round(16 + fraction * 633))
        graph = promedas_like(num_diseases, num_findings, seed + index)
        suite.append((f"promedas_{index:02d}", graph))
    return suite


def object_detection_suite(
    count: int = 79, seed: int = 20170202
) -> list[tuple[str, Graph]]:
    """79 object-detection MRFs, 60 nodes, 135–180 edges each."""
    return [
        (f"objdetect_{index:02d}", object_detection_like(seed + index))
        for index in range(count)
    ]


def segmentation_suite(count: int = 6, seed: int = 20170303) -> list[tuple[str, Graph]]:
    """6 segmentation networks, 226–235 nodes, ~617–647 edges."""
    return [
        (f"segmentation_{index}", segmentation_like(seed + index))
        for index in range(count)
    ]


def grid_suite(count: int = 8, seed: int = 20170404) -> list[tuple[str, Graph]]:
    """8 grid networks: N = 10 and N = 20 (paper: 100/400 nodes, 180–760 edges).

    Half the instances per size drop a few random edges, modelling
    grids with observed (clamped) variables, as the paper's grid
    instances vary while staying in the same band.
    """
    rng = random.Random(seed)
    suite = []
    sizes = [10, 20] * ((count + 1) // 2)
    for index in range(count):
        size = sizes[index]
        graph = grid_graph(size, size)
        if index % 2 == 1:
            edges = graph.edges()
            for edge in rng.sample(edges, max(1, len(edges) // 50)):
                graph.remove_edge(*edge)
        suite.append((f"grid_{size}x{size}_{index}", graph))
    return suite


def pedigree_suite(count: int = 3, seed: int = 20170505) -> list[tuple[str, Graph]]:
    """3 pedigree networks, ≈385 nodes / ≈930 edges each."""
    return [
        (f"pedigree_{index}", pedigree_like(seed + index)) for index in range(count)
    ]


def csp_suite(count: int = 3, seed: int = 20170606) -> list[tuple[str, Graph]]:
    """3 CSP primal graphs with 67–100 nodes and 226–619 constraints."""
    shapes = [(67, 226), (80, 410), (100, 619)]
    suite = []
    for index in range(count):
        n, m = shapes[index % len(shapes)]
        suite.append((f"csp_{index}", csp_like(n, m, seed + index)))
    return suite


def pgm_suites(
    scale: float = 1.0, seed: int = 2017
) -> dict[str, list[tuple[str, Graph]]]:
    """All six suites, with instance counts scaled by ``scale``.

    ``scale=1.0`` reproduces the paper's instance counts; the benchmark
    harness uses smaller scales to stay within its time budget.
    """

    def scaled(full: int) -> int:
        return max(1, int(round(full * scale)))

    return {
        "Promedas": promedas_suite(scaled(33), seed + 1),
        "ObjectDetection": object_detection_suite(scaled(79), seed + 2),
        "Segmentation": segmentation_suite(scaled(6), seed + 3),
        "Grids": grid_suite(scaled(8), seed + 4),
        "Pedigree": pedigree_suite(scaled(3), seed + 5),
        "CSP": csp_suite(scaled(3), seed + 6),
    }
