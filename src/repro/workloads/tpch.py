"""TPC-H join-query primal graphs (part of S25).

The paper evaluates on the Gaifman (primal) graphs of the 22 TPC-H
benchmark queries as implemented in LogiQL (LogicBlox's Datalog
dialect).  Those encodings are not public, so this module reconstructs
them from the TPC-H specification in the same style: every query is a
conjunction of atoms (relation scans, derived-value definitions,
filter predicates and the aggregation head), each atom spanning the
query variables it mentions; the primal graph has one node per
variable and a clique per atom.

The qualitative structure matches the paper's report: the graphs have
at most ~22 nodes, roughly half are chordal (only one minimal
triangulation — themselves), most of the rest have a handful, and the
two structurally rich queries **Q7** (volume shipping — a long
supplier/customer/nation cycle closed by the cross-nation predicate
and the aggregation head) and **Q9** (product-type profit — the
lineitem/partsupp double-key join interleaved with the profit
expression) have two orders of magnitude more minimal triangulations
than any other query.  Exact counts (the paper's 700 and 588) depend
on the LogicBlox encodings and are not reproducible; see
EXPERIMENTS.md.

Atoms follow the TPC-H schema abbreviations: ``sk/ck/pk/ok/nk/rk`` are
supplier/customer/part/order/nation/region keys; a trailing digit
distinguishes multiple scans of one relation.
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = [
    "tpch_query",
    "tpch_query_names",
    "tpch_suite",
    "tpch_hypergraph",
    "TPCH_ATOMS",
]

Atom = tuple[str, tuple[str, ...]]

TPCH_ATOMS: dict[str, list[Atom]] = {
    # Q1: pricing summary report — single lineitem scan + derived sums.
    "Q1": [
        ("lineitem", ("qty", "ep", "disc", "tax", "rflag", "lstatus", "sdate")),
        ("charge", ("ep", "disc", "tax", "charge")),
        ("result", ("rflag", "lstatus", "qty", "ep", "charge")),
    ],
    # Q2: minimum cost supplier — part/supplier/nation/region plus a
    # correlated minimum-cost subquery over a second supplier chain in
    # the same nation (the region filters are constants, not join
    # variables).
    "Q2": [
        ("part", ("pk", "mfgr", "size", "ptype")),
        ("partsupp", ("pk", "sk", "cost")),
        ("supplier", ("sk", "nk", "sacct", "sname", "saddr", "sphone")),
        ("nation", ("nk", "rk", "nname")),
        ("region", ("rk", "rname")),
        ("partsupp2", ("pk", "sk2", "cost2")),
        ("supplier2", ("sk2", "nk")),
        ("mincost", ("cost", "cost2")),
    ],
    # Q3: shipping priority — customer/orders/lineitem chain.
    "Q3": [
        ("customer", ("ck", "mktseg")),
        ("orders", ("ok", "ck", "odate", "sprio")),
        ("lineitem", ("ok", "ep", "disc", "sdate")),
        ("revenue", ("ep", "disc", "rev")),
        ("result", ("ok", "rev", "odate", "sprio")),
    ],
    # Q4: order priority checking — orders with an existential lineitem.
    "Q4": [
        ("orders", ("ok", "odate", "oprio")),
        ("lineitem", ("ok", "cdate", "rdate")),
        ("late", ("cdate", "rdate")),
    ],
    # Q5: local supplier volume — the classic customer/supplier nation cycle.
    "Q5": [
        ("customer", ("ck", "nk")),
        ("orders", ("ok", "ck", "odate")),
        ("lineitem", ("ok", "sk", "ep", "disc")),
        ("supplier", ("sk", "nk")),
        ("nation", ("nk", "rk", "nname")),
        ("region", ("rk", "rname")),
        ("result", ("nname", "ep", "disc")),
    ],
    # Q6: forecasting revenue change — single scan.
    "Q6": [
        ("lineitem", ("sdate", "disc", "qty", "ep")),
        ("revenue", ("ep", "disc", "rev")),
    ],
    # Q7: volume shipping — two nation scans closed by the cross-nation
    # filter and the (supp_nation, cust_nation, year) aggregation head.
    "Q7": [
        ("supplier", ("sk", "nk1")),
        ("lineitem", ("ok", "sk", "sdate", "ep", "disc")),
        ("orders", ("ok", "ck")),
        ("customer", ("ck", "nk2")),
        ("nation1", ("nk1", "nn1")),
        ("nation2", ("nk2", "nn2")),
        ("crossnation", ("nn1", "nn2")),
        ("year", ("sdate", "yr")),
        ("volume", ("ep", "disc", "vol")),
        ("result", ("nn1", "nn2", "yr", "vol")),
    ],
    # Q8: national market share — two-level nation/region with all-order scan.
    "Q8": [
        ("part", ("pk", "ptype")),
        ("lineitem", ("ok", "pk", "sk", "ep", "disc")),
        ("supplier", ("sk", "nk2")),
        ("orders", ("ok", "ck", "odate")),
        ("customer", ("ck", "nk1")),
        ("nation1", ("nk1", "rk")),
        ("region", ("rk", "rname")),
        ("nation2", ("nk2", "nn2")),
        ("volume", ("ep", "disc", "vol")),
        ("result", ("odate", "vol")),
    ],
    # Q9: product type profit — lineitem/partsupp double-key join plus
    # the profit expression over four lineitem/partsupp attributes.
    "Q9": [
        ("part", ("pk", "pname")),
        ("supplier", ("sk", "nk")),
        ("lineitem", ("ok", "pk", "sk", "qty", "ep", "disc")),
        ("partsupp", ("pk", "sk", "cost")),
        ("orders", ("ok", "odate")),
        ("nation", ("nk", "nname")),
        ("year", ("odate", "yr")),
        ("gross", ("ep", "disc", "gross")),
        ("amount", ("gross", "cost", "qty", "amt")),
        ("result", ("nname", "yr", "amt")),
    ],
    # Q10: returned item reporting.
    "Q10": [
        ("customer", ("ck", "cname", "cacct", "nk", "caddr", "cphone")),
        ("orders", ("ok", "ck", "odate")),
        ("lineitem", ("ok", "ep", "disc", "rflag")),
        ("nation", ("nk", "nname")),
        ("revenue", ("ep", "disc", "rev")),
        ("result", ("ck", "cname", "rev", "cacct", "nname")),
    ],
    # Q11: important stock identification — partsupp value subquery.
    "Q11": [
        ("partsupp", ("pk", "sk", "cost", "avail")),
        ("supplier", ("sk", "nk")),
        ("nation", ("nk", "nname")),
        ("value", ("cost", "avail", "val")),
        ("result", ("pk", "val")),
    ],
    # Q12: shipping modes and order priority.
    "Q12": [
        ("orders", ("ok", "oprio")),
        ("lineitem", ("ok", "smode", "cdate", "rdate", "sdate")),
        ("result", ("smode", "oprio")),
    ],
    # Q13: customer distribution — left join customer/orders.
    "Q13": [
        ("customer", ("ck",)),
        ("orders", ("ok", "ck", "comment")),
        ("result", ("ck", "cnt")),
    ],
    # Q14: promotion effect.
    "Q14": [
        ("lineitem", ("pk", "ep", "disc", "sdate")),
        ("part", ("pk", "ptype")),
        ("revenue", ("ep", "disc", "rev")),
        ("promo", ("ptype", "rev")),
    ],
    # Q15: top supplier — revenue view joined back to supplier.
    "Q15": [
        ("lineitem", ("sk", "ep", "disc", "sdate")),
        ("revenue", ("ep", "disc", "rev")),
        ("supplier", ("sk", "sname", "saddr", "sphone")),
        ("result", ("sk", "sname", "rev")),
    ],
    # Q16: parts/supplier relationship.
    "Q16": [
        ("partsupp", ("pk", "sk")),
        ("part", ("pk", "brand", "ptype", "size")),
        ("supplier", ("sk", "comment")),
        ("result", ("brand", "ptype", "size", "sk")),
    ],
    # Q17: small-quantity-order revenue — correlated average subquery.
    "Q17": [
        ("lineitem", ("pk", "qty", "ep")),
        ("part", ("pk", "brand", "container")),
        ("lineitem2", ("pk", "qty2")),
        ("avgqty", ("qty", "qty2")),
    ],
    # Q18: large volume customer.
    "Q18": [
        ("customer", ("ck", "cname")),
        ("orders", ("ok", "ck", "odate", "ototal")),
        ("lineitem", ("ok", "qty")),
        ("result", ("cname", "ck", "ok", "odate", "ototal", "qty")),
    ],
    # Q19: discounted revenue — disjunctive part/lineitem predicate.
    "Q19": [
        ("lineitem", ("pk", "qty", "ep", "disc", "smode", "sinst")),
        ("part", ("pk", "brand", "container", "size")),
        ("cond", ("brand", "container", "size", "qty")),
        ("revenue", ("ep", "disc", "rev")),
    ],
    # Q20: potential part promotion — nested availability subquery.
    "Q20": [
        ("supplier", ("sk", "sname", "saddr", "nk")),
        ("nation", ("nk", "nname")),
        ("partsupp", ("pk", "sk", "avail")),
        ("part", ("pk", "pname")),
        ("lineitem", ("pk", "sk", "qty", "sdate")),
        ("halfqty", ("avail", "qty")),
    ],
    # Q21: suppliers who kept orders waiting — three lineitem scans.
    "Q21": [
        ("supplier", ("sk", "sname", "nk")),
        ("lineitem1", ("ok", "sk", "cdate1", "rdate1")),
        ("orders", ("ok", "ostatus")),
        ("lineitem2", ("ok", "sk2")),
        ("lineitem3", ("ok", "sk3", "cdate3", "rdate3")),
        ("nation", ("nk", "nname")),
        ("distinct2", ("sk", "sk2")),
        ("distinct3", ("sk", "sk3")),
    ],
    # Q22: global sales opportunity — customer phone-prefix antijoin.
    "Q22": [
        ("customer", ("ck", "cphone", "cacct")),
        ("prefix", ("cphone", "cntry")),
        ("avgacct", ("cacct", "avgbal")),
        ("orders", ("ok", "ck")),
        ("result", ("cntry", "cacct")),
    ],
}


def tpch_query_names() -> list[str]:
    """Return the 22 query names in numeric order."""
    return sorted(TPCH_ATOMS, key=lambda name: int(name[1:]))


def tpch_query(name: str) -> Graph:
    """Return the primal (Gaifman) graph of TPC-H query ``name``.

    Variables become nodes; each atom's variables are saturated into a
    clique.
    """
    try:
        atoms = TPCH_ATOMS[name]
    except KeyError:
        raise KeyError(
            f"unknown TPC-H query {name!r}; expected Q1..Q22"
        ) from None
    graph = Graph()
    for __, variables in atoms:
        graph.add_nodes(variables)
        graph.saturate(variables)
    return graph


def tpch_suite() -> list[tuple[str, Graph]]:
    """Return all 22 query graphs as ``[(name, graph), …]``."""
    return [(name, tpch_query(name)) for name in tpch_query_names()]


def tpch_hypergraph(name: str):
    """Return TPC-H query ``name`` as a hypergraph (atoms = hyperedges).

    Useful with :mod:`repro.hypergraph` for generalized hypertree
    decompositions of the queries, the object the paper's DunceCap
    comparison enumerates.
    """
    from repro.hypergraph.hypergraph import Hypergraph

    try:
        atoms = TPCH_ATOMS[name]
    except KeyError:
        raise KeyError(
            f"unknown TPC-H query {name!r}; expected Q1..Q22"
        ) from None
    return Hypergraph({relation: scope for relation, scope in atoms})
