"""Tree decomposition serialisation in the PACE ``.td`` format (extension).

The PACE challenge exchange format for tree decompositions::

    c optional comments
    s td <num_bags> <max_bag_size> <num_graph_nodes>
    b <bag_id> <v1> <v2> ...
    <bag_id_a> <bag_id_b>          (tree edges)

Bags are 1-indexed; graph nodes are assumed to be 1..n ints (use
:meth:`~repro.graph.graph.Graph.relabeled` or the mapping returned by
:func:`write_pace_td` for arbitrary node names).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.errors import ParseError
from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = ["write_pace_td", "read_pace_td", "parse_pace_td"]


def write_pace_td(
    decomposition: TreeDecomposition,
    graph: Graph,
    target: str | Path | TextIO,
) -> dict[Node, int]:
    """Write ``decomposition`` in PACE ``.td`` format.

    Graph nodes are relabelled to 1..n in sorted order; the mapping is
    returned so callers can translate back.
    """
    nodes = _sort_nodes(graph.node_set())
    index = {node: i + 1 for i, node in enumerate(nodes)}
    max_bag = max((len(bag) for bag in decomposition.bags), default=0)
    lines = [
        f"s td {decomposition.num_bags} {max_bag} {len(nodes)}",
    ]
    for bag_id, bag in enumerate(decomposition.bags, start=1):
        members = " ".join(str(index[v]) for v in _sort_nodes(bag))
        lines.append(f"b {bag_id}{' ' + members if members else ''}")
    for a, b in decomposition.tree_edges:
        lines.append(f"{a + 1} {b + 1}")
    text = "\n".join(lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
    return index


def parse_pace_td(text: str) -> TreeDecomposition:
    """Parse a PACE ``.td`` document; see :func:`read_pace_td`."""
    return read_pace_td(io.StringIO(text))


def read_pace_td(source: str | Path | TextIO) -> TreeDecomposition:
    """Read a tree decomposition in PACE ``.td`` format.

    Bags come back as frozensets of 1-based int node ids.
    """
    if isinstance(source, (str, Path)):
        stream = open(source, "r", encoding="utf-8")
        should_close = True
    else:
        stream, should_close = source, False

    declared_bags: int | None = None
    bags: dict[int, frozenset[int]] = {}
    edges: list[tuple[int, int]] = []
    try:
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            tokens = line.split()
            if tokens[0] == "s":
                if declared_bags is not None:
                    raise ParseError("duplicate solution line", line_number)
                if len(tokens) != 5 or tokens[1] != "td":
                    raise ParseError("malformed 's td' line", line_number)
                try:
                    declared_bags = int(tokens[2])
                except ValueError:
                    raise ParseError("non-integer bag count", line_number) from None
            elif tokens[0] == "b":
                if declared_bags is None:
                    raise ParseError("bag before solution line", line_number)
                try:
                    bag_id = int(tokens[1])
                    members = frozenset(int(t) for t in tokens[2:])
                except (ValueError, IndexError):
                    raise ParseError("malformed bag line", line_number) from None
                if bag_id in bags:
                    raise ParseError(f"duplicate bag {bag_id}", line_number)
                bags[bag_id] = members
            else:
                if len(tokens) != 2:
                    raise ParseError("malformed tree-edge line", line_number)
                try:
                    a, b = int(tokens[0]), int(tokens[1])
                except ValueError:
                    raise ParseError("non-integer bag id", line_number) from None
                edges.append((a - 1, b - 1))
    finally:
        if should_close:
            stream.close()

    if declared_bags is None:
        raise ParseError("missing solution line")
    if set(bags) != set(range(1, declared_bags + 1)):
        raise ParseError(
            f"expected bags 1..{declared_bags}, got {sorted(bags)}"
        )
    ordered = [bags[i] for i in range(1, declared_bags + 1)]
    return TreeDecomposition.build(ordered, edges)
