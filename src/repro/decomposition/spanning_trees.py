"""Enumerating all maximum-weight spanning trees (system S21).

The proper tree decompositions inside one bag-equivalence class are
exactly the maximum-weight spanning trees of the clique graph (paper
Section 5, after Jordan's characterisation), so we need to enumerate
*all* of them with polynomial delay.

The enumeration uses the matroid structure of maximum spanning trees:

1. process distinct edge weights in descending order; after weight w,
   the connected components of the subgraph of edges with weight ≥ w
   are the same for *every* maximum spanning tree (greedy exchange
   property);
2. therefore a maximum spanning tree decomposes into independent
   *stage* choices: for each weight w, a maximal spanning forest of the
   multigraph M_w whose nodes are the components formed by strictly
   heavier edges and whose edges are the weight-w edges that are not
   self-loops in that contraction;
3. all spanning trees of a connected multigraph are enumerated by the
   classical deletion/contraction recursion (include a chosen edge and
   contract, or delete it when the graph stays connected), which has
   polynomial delay;
4. the stage choices are combined through a restartable cartesian
   product, keeping the overall delay polynomial.

Edges are identified by their index in the input list, so parallel
edges and weight ties are handled exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from typing import TypeVar

__all__ = [
    "maximum_spanning_tree",
    "maximum_spanning_weight",
    "enumerate_spanning_trees",
    "enumerate_maximum_spanning_trees",
]

T = TypeVar("T")

WeightedEdge = tuple[int, int, int]  # (u, v, weight); nodes are 0..n-1


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def maximum_spanning_tree(
    num_nodes: int, edges: Sequence[WeightedEdge]
) -> list[int]:
    """Return edge indices of one maximum spanning forest (Kruskal).

    Spans every connected component; for a connected graph this is a
    maximum spanning tree.
    """
    order = sorted(range(len(edges)), key=lambda i: -edges[i][2])
    uf = _UnionFind(num_nodes)
    chosen: list[int] = []
    for index in order:
        u, v, __ = edges[index]
        if uf.union(u, v):
            chosen.append(index)
    return sorted(chosen)


def maximum_spanning_weight(num_nodes: int, edges: Sequence[WeightedEdge]) -> int:
    """Return the total weight of a maximum spanning forest."""
    return sum(edges[i][2] for i in maximum_spanning_tree(num_nodes, edges))


def enumerate_spanning_trees(
    num_nodes: int, edges: Sequence[tuple[int, int]]
) -> Iterator[frozenset[int]]:
    """Enumerate all spanning forests of a multigraph, as edge-index sets.

    For a connected input these are the spanning trees.  Deletion /
    contraction recursion with a connectivity test before each
    deletion branch gives polynomial delay.
    """
    live_edges = [(u, v, i) for i, (u, v) in enumerate(edges)]
    yield from _span_forests(num_nodes, live_edges)


def _span_forests(
    num_nodes: int, edges: list[tuple[int, int, int]]
) -> Iterator[frozenset[int]]:
    # Work on a multigraph given as (u, v, original_index) triples over
    # nodes 0..num_nodes-1; nodes may be isolated (their own component).
    components = _component_count(num_nodes, edges)
    target = num_nodes - components  # forest size to produce
    yield from _span_rec(num_nodes, edges, frozenset(), target)


def _span_rec(
    num_nodes: int,
    edges: list[tuple[int, int, int]],
    chosen: frozenset[int],
    remaining: int,
) -> Iterator[frozenset[int]]:
    if remaining == 0:
        yield chosen
        return
    # Pick the first non-self-loop edge and branch.
    pivot = None
    for index, (u, v, original) in enumerate(edges):
        if u != v:
            pivot = index
            break
    if pivot is None:
        return
    u, v, original = edges[pivot]

    # Branch 1: include the edge — contract v into u.
    contracted = []
    for a, b, orig in edges[pivot + 1 :]:
        a2 = u if a == v else a
        b2 = u if b == v else b
        if a2 != b2:
            contracted.append((a2, b2, orig))
    yield from _span_rec(num_nodes, contracted, chosen | {original}, remaining - 1)

    # Branch 2: exclude the edge — only if connectivity is preserved
    # (i.e. the component count does not grow).
    rest = edges[:pivot] + edges[pivot + 1 :]
    if _component_count(num_nodes, rest) == _component_count(num_nodes, edges):
        yield from _span_rec(num_nodes, rest, chosen, remaining)


def _component_count(num_nodes: int, edges: list[tuple[int, int, int]]) -> int:
    uf = _UnionFind(num_nodes)
    merges = 0
    for u, v, __ in edges:
        if u != v and uf.union(u, v):
            merges += 1
    return num_nodes - merges


def enumerate_maximum_spanning_trees(
    num_nodes: int, edges: Sequence[WeightedEdge]
) -> Iterator[frozenset[int]]:
    """Enumerate all maximum-weight spanning forests, as edge-index sets.

    For a connected input these are exactly the maximum spanning trees.
    Every result has the weight of :func:`maximum_spanning_weight`, and
    every such forest is produced exactly once.
    """
    if num_nodes <= 0:
        yield frozenset()
        return
    weights = sorted({w for __, __, w in edges}, reverse=True)

    # Stage structure: after processing weight w, nodes collapse into
    # the components of the "weight ≥ w" subgraph — identical for every
    # maximum spanning forest.
    stage_factories: list[Callable[[], Iterator[frozenset[int]]]] = []
    uf = _UnionFind(num_nodes)
    for w in weights:
        stage_edge_list = [
            (uf.find(u), uf.find(v), index)
            for index, (u, v, weight) in enumerate(edges)
            if weight == w
        ]
        stage_edge_list = [(u, v, i) for u, v, i in stage_edge_list if u != v]
        if stage_edge_list:
            nodes = sorted(
                {u for u, __, __ in stage_edge_list}
                | {v for __, v, __ in stage_edge_list}
            )
            relabel = {node: i for i, node in enumerate(nodes)}
            local_edges = [
                (relabel[u], relabel[v], orig) for u, v, orig in stage_edge_list
            ]
            stage_factories.append(
                _make_stage_factory(len(nodes), local_edges)
            )
        # Commit the contraction for the next stage.
        for u, v, __ in stage_edge_list:
            uf.union(u, v)

    yield from _restartable_product(stage_factories, frozenset())


def _make_stage_factory(
    num_nodes: int, local_edges: list[tuple[int, int, int]]
) -> Callable[[], Iterator[frozenset[int]]]:
    def factory() -> Iterator[frozenset[int]]:
        return _span_forests(num_nodes, list(local_edges))

    return factory


def _restartable_product(
    factories: list[Callable[[], Iterator[frozenset[int]]]],
    accumulated: frozenset[int],
) -> Iterator[frozenset[int]]:
    if not factories:
        yield accumulated
        return
    head, tail = factories[0], factories[1:]
    for choice in head():
        yield from _restartable_product(tail, accumulated | choice)
