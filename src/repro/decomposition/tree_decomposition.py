"""Tree decompositions: data type, validation, subsumption, properness (S19).

A tree decomposition of g is a tree t plus a bag function β mapping
tree nodes to sets of graph nodes, satisfying (paper Section 2.4):

1. node coverage — every node of g appears in some bag;
2. edge coverage — every edge of g is inside some bag;
3. the junction-tree (running-intersection) property.

Section 5 of the paper defines the *proper* tree decompositions — the
ones not *strictly subsumed* by any other — and proves they are, up to
bag-equivalence, in bijection with the minimal triangulations.  This
module implements the full vocabulary: validity checking, width/fill,
``saturate(g, d)``, the ⊑ refinement relation, strict subsumption, and
an exact properness test (valid + saturation is a minimal
triangulation + bags are exactly its maximal cliques, which Lemma 5.6
and Lemma 5.7 show to be equivalent to properness).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import InvalidTreeDecompositionError
from repro.graph.graph import Graph, Node

__all__ = ["TreeDecomposition"]

BagId = int


@dataclass(frozen=True)
class TreeDecomposition:
    """An immutable tree decomposition.

    Attributes
    ----------
    bags:
        Tuple of bags; the tree node ids are the tuple indices.
    tree_edges:
        The edges of the decomposition tree, as (smaller, larger) index
        pairs.  A decomposition with a single bag has no edges.
    """

    bags: tuple[frozenset[Node], ...]
    tree_edges: tuple[tuple[BagId, BagId], ...]

    @classmethod
    def build(
        cls,
        bags: Iterable[Iterable[Node]],
        tree_edges: Iterable[tuple[BagId, BagId]] = (),
    ) -> "TreeDecomposition":
        """Normalise and construct (bags to frozensets, edges canonical)."""
        bag_tuple = tuple(frozenset(bag) for bag in bags)
        edge_tuple = tuple(
            sorted((min(a, b), max(a, b)) for a, b in tree_edges)
        )
        return cls(bag_tuple, edge_tuple)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------

    @property
    def num_bags(self) -> int:
        """Number of tree nodes."""
        return len(self.bags)

    @property
    def width(self) -> int:
        """Largest bag size minus one."""
        if not self.bags:
            return -1
        return max(len(bag) for bag in self.bags) - 1

    def bag_multiset(self) -> tuple[frozenset[Node], ...]:
        """The bags as a sorted multiset (for ≡b comparisons)."""
        return tuple(sorted(self.bags, key=lambda bag: sorted(map(repr, bag))))

    def bag_set(self) -> frozenset[frozenset[Node]]:
        """The distinct bags (``bags(d)`` of the paper)."""
        return frozenset(self.bags)

    def neighbors(self) -> Mapping[BagId, list[BagId]]:
        """Adjacency of the decomposition tree."""
        adjacency: dict[BagId, list[BagId]] = {i: [] for i in range(len(self.bags))}
        for a, b in self.tree_edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        return adjacency

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------

    def is_tree(self) -> bool:
        """Return whether the underlying structure is a tree."""
        n = len(self.bags)
        if n == 0:
            return len(self.tree_edges) == 0
        if len(self.tree_edges) != n - 1:
            return False
        seen = {0}
        stack = [0]
        adjacency = self.neighbors()
        while stack:
            node = stack.pop()
            for neigh in adjacency[node]:
                if neigh not in seen:
                    seen.add(neigh)
                    stack.append(neigh)
        return len(seen) == n

    def validate(self, graph: Graph) -> None:
        """Raise :class:`InvalidTreeDecompositionError` unless valid for ``graph``.

        Checks tree shape, node coverage, edge coverage, and the
        junction-tree property (via connectedness of every node's bag
        subtree, which is equivalent).
        """
        if not self.is_tree():
            raise InvalidTreeDecompositionError("underlying structure is not a tree")
        covered: set[Node] = set()
        for bag in self.bags:
            covered |= bag
        missing_nodes = graph.node_set() - covered
        if missing_nodes:
            raise InvalidTreeDecompositionError(
                f"nodes not covered by any bag: {sorted(map(repr, missing_nodes))}"
            )
        extraneous = covered - graph.node_set()
        if extraneous:
            raise InvalidTreeDecompositionError(
                f"bags mention unknown nodes: {sorted(map(repr, extraneous))}"
            )
        for u, v in graph.edges():
            if not any(u in bag and v in bag for bag in self.bags):
                raise InvalidTreeDecompositionError(
                    f"edge ({u!r}, {v!r}) not covered by any bag"
                )
        self._validate_junction_property()

    def is_valid(self, graph: Graph) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(graph)
        except InvalidTreeDecompositionError:
            return False
        return True

    def _validate_junction_property(self) -> None:
        adjacency = self.neighbors()
        nodes: set[Node] = set()
        for bag in self.bags:
            nodes |= bag
        for node in nodes:
            holders = [i for i, bag in enumerate(self.bags) if node in bag]
            if not holders:
                continue
            # The bags containing `node` must induce a connected subtree.
            seen = {holders[0]}
            stack = [holders[0]]
            holder_set = set(holders)
            while stack:
                current = stack.pop()
                for neigh in adjacency[current]:
                    if neigh in holder_set and neigh not in seen:
                        seen.add(neigh)
                        stack.append(neigh)
            if seen != holder_set:
                raise InvalidTreeDecompositionError(
                    f"bags containing {node!r} do not form a connected subtree"
                )

    # ------------------------------------------------------------------
    # Saturation, subsumption, properness (paper Section 5)
    # ------------------------------------------------------------------

    def saturate(self, graph: Graph) -> Graph:
        """Return ``saturate(g, d)``: g with every bag saturated.

        Always a triangulation of g when d is a valid tree
        decomposition (paper Proposition 5.5).
        """
        return graph.saturated(self.bags)

    def fill(self, graph: Graph) -> int:
        """Number of edges added by :meth:`saturate` (the fill measure)."""
        return self.saturate(graph).num_edges - graph.num_edges

    def refines(self, other: "TreeDecomposition") -> bool:
        """Return whether ``self ⊑ other``: every bag fits in a bag of other."""
        return all(
            any(bag <= other_bag for other_bag in other.bags) for bag in self.bags
        )

    def strictly_subsumes(self, other: "TreeDecomposition") -> bool:
        """Return whether ``self`` strictly subsumes ``other``.

        That is: ``self ⊑ other`` and some bag occurs more often in
        ``other`` than in ``self`` (multiset non-containment).
        """
        if not self.refines(other):
            return False
        own_counts: dict[frozenset[Node], int] = {}
        for bag in self.bags:
            own_counts[bag] = own_counts.get(bag, 0) + 1
        other_counts: dict[frozenset[Node], int] = {}
        for bag in other.bags:
            other_counts[bag] = other_counts.get(bag, 0) + 1
        return any(
            count > own_counts.get(bag, 0) for bag, count in other_counts.items()
        )

    def is_proper(self, graph: Graph) -> bool:
        """Return whether this is a *proper* tree decomposition of ``graph``.

        By the paper's Section 5 (Lemmas 5.6 and 5.7) a valid tree
        decomposition d is proper iff ``h = saturate(g, d)`` is a
        *minimal* triangulation of g and ``bags(d)`` is exactly
        ``MaxClq(h)`` with no repeated bag.
        """
        from repro.chordal.cliques import maximal_cliques
        from repro.chordal.sandwich import is_minimal_triangulation

        if not self.is_valid(graph):
            return False
        if len(set(self.bags)) != len(self.bags):
            return False
        saturated = self.saturate(graph)
        if not is_minimal_triangulation(graph, saturated):
            return False
        return self.bag_set() == frozenset(maximal_cliques(saturated))

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(num_bags={self.num_bags}, width={self.width})"
        )
