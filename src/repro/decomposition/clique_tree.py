"""Clique trees of chordal graphs as tree decompositions (system S20).

Jordan's characterisation (paper Theorem 2.3 and Section 5): a chordal
graph has a tree decomposition whose bags are its cliques, and the tree
decompositions over the maximal-clique bags are exactly the
maximum-weight spanning trees of the *clique graph* (cliques as nodes,
edge weight = intersection size).  :func:`clique_tree` returns the
canonical one produced by the MCS clique-forest construction;
:func:`clique_graph` exposes the weighted clique graph used by the
spanning-tree enumeration of proper tree decompositions.
"""

from __future__ import annotations

from repro.chordal.cliques import mcs_clique_forest
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graph.graph import Graph, Node

__all__ = ["clique_tree", "clique_graph"]


def clique_tree(graph: Graph) -> TreeDecomposition:
    """Return a clique tree of a chordal ``graph`` as a tree decomposition.

    Bags are the maximal cliques; the tree edges come from the MCS
    clique forest.  For a *disconnected* chordal graph the component
    clique trees are linked through zero-overlap edges (root to
    previous root) so the result is a single tree, which is what a tree
    decomposition requires.

    Raises :class:`~repro.errors.NotChordalError` on non-chordal input.
    """
    forest = mcs_clique_forest(graph)
    if not forest.cliques:
        return TreeDecomposition.build([frozenset()], [])
    edges: list[tuple[int, int]] = []
    roots: list[int] = []
    for i, parent in enumerate(forest.parent):
        if parent is None:
            roots.append(i)
        else:
            edges.append((i, parent))
    for previous_root, root in zip(roots, roots[1:]):
        edges.append((previous_root, root))
    return TreeDecomposition.build(forest.cliques, edges)


def clique_graph(
    graph: Graph,
) -> tuple[list[frozenset[Node]], list[tuple[int, int, int]]]:
    """Return the weighted clique graph of a chordal ``graph``.

    Returns ``(cliques, weighted_edges)`` where each weighted edge is
    ``(i, j, |cliques[i] ∩ cliques[j]|)`` for every pair of maximal
    cliques with a non-empty intersection.  By Jordan's theorem, the
    valid clique trees are exactly the maximum-weight spanning trees of
    this graph (plus arbitrary linking of components when the input is
    disconnected).
    """
    forest = mcs_clique_forest(graph)
    cliques = list(forest.cliques)
    edges: list[tuple[int, int, int]] = []
    for i in range(len(cliques)):
        for j in range(i + 1, len(cliques)):
            weight = len(cliques[i] & cliques[j])
            if weight > 0:
                edges.append((i, j, weight))
    return cliques, edges
