"""Nice tree decompositions and dynamic programming over them (extension).

Most treewidth-based algorithms are stated over *nice* tree
decompositions: a rooted binary shape where every node is one of

* **leaf** — empty bag, no children;
* **introduce(v)** — bag = child bag ∪ {v};
* **forget(v)**    — bag = child bag \\ {v};
* **join**         — two children with identical bags.

:func:`make_nice` converts any tree decomposition into a nice one of
the same width (standard construction: root it, binarise high-degree
nodes through join copies, then interpolate introduce/forget chains
along every edge and down to empty leaves).

As a worked application — and an end-to-end test that the whole
pipeline produces decompositions real algorithms can run on —
:func:`max_weight_independent_set` solves weighted maximum independent
set by the textbook DP over a nice decomposition, in time
O(2^width · poly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graph.graph import Graph, Node, _sort_nodes

__all__ = ["NiceNode", "NiceTreeDecomposition", "make_nice", "max_weight_independent_set"]


@dataclass
class NiceNode:
    """One node of a nice tree decomposition."""

    kind: str  # "leaf" | "introduce" | "forget" | "join"
    bag: frozenset[Node]
    children: list[int] = field(default_factory=list)
    variable: Node | None = None  # the introduced/forgotten vertex


@dataclass
class NiceTreeDecomposition:
    """A rooted nice tree decomposition (nodes indexed, root last)."""

    nodes: list[NiceNode]
    root: int

    @property
    def width(self) -> int:
        if not self.nodes:
            return -1
        return max(len(node.bag) for node in self.nodes) - 1

    def validate(self, graph: Graph) -> None:
        """Check nice-shape invariants and tree-decomposition validity."""
        for index, node in enumerate(self.nodes):
            if node.kind == "leaf":
                assert not node.children and not node.bag, index
            elif node.kind == "introduce":
                (child,) = node.children
                assert node.variable is not None
                assert node.bag == self.nodes[child].bag | {node.variable}, index
                assert node.variable not in self.nodes[child].bag
            elif node.kind == "forget":
                (child,) = node.children
                assert node.variable is not None
                assert node.bag == self.nodes[child].bag - {node.variable}, index
                assert node.variable in self.nodes[child].bag
            elif node.kind == "join":
                left, right = node.children
                assert node.bag == self.nodes[left].bag == self.nodes[right].bag
            else:  # pragma: no cover
                raise AssertionError(f"unknown kind {node.kind!r}")
        # Flatten into an ordinary decomposition and validate that.
        bags = [node.bag for node in self.nodes]
        edges = [
            (index, child)
            for index, node in enumerate(self.nodes)
            for child in node.children
        ]
        TreeDecomposition.build(bags, edges).validate(graph)


def make_nice(
    decomposition: TreeDecomposition, graph: Graph
) -> NiceTreeDecomposition:
    """Convert ``decomposition`` into an equivalent nice decomposition.

    The result has the same width; its size is O(width · #bags + |V|).
    """
    decomposition.validate(graph)
    nodes: list[NiceNode] = []

    def add(node: NiceNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def chain_from_empty(target: frozenset[Node]) -> int:
        """Leaf + introduce chain building up to ``target``."""
        current = add(NiceNode("leaf", frozenset()))
        bag: frozenset[Node] = frozenset()
        for v in _sort_nodes(target):
            bag = bag | {v}
            current = add(NiceNode("introduce", bag, [current], variable=v))
        return current

    def chain_between(child_index: int, child_bag: frozenset[Node], target: frozenset[Node]) -> int:
        """Forget/introduce chain transforming child_bag into target."""
        current = child_index
        bag = child_bag
        for v in _sort_nodes(child_bag - target):
            bag = bag - {v}
            current = add(NiceNode("forget", bag, [current], variable=v))
        for v in _sort_nodes(target - bag):
            bag = bag | {v}
            current = add(NiceNode("introduce", bag, [current], variable=v))
        return current

    if decomposition.num_bags == 0:
        root = add(NiceNode("leaf", frozenset()))
        return NiceTreeDecomposition(nodes, root)

    adjacency = decomposition.neighbors()
    # Root the original decomposition at bag 0; children listed per bag.
    parent: dict[int, int | None] = {0: None}
    order = [0]
    for current in order:
        for neighbor in adjacency[current]:
            if neighbor not in parent:
                parent[neighbor] = current
                order.append(neighbor)
    children_of: dict[int, list[int]] = {i: [] for i in range(decomposition.num_bags)}
    for node, up in parent.items():
        if up is not None:
            children_of[up].append(node)

    def build(original: int) -> int:
        """Return the nice-node index whose bag equals the original bag."""
        bag = decomposition.bags[original]
        kids = children_of[original]
        if not kids:
            return chain_from_empty(bag)
        # Convert each child subtree, then adapt it to this bag.
        adapted = [
            chain_between(build(kid), bag_of(kid), bag) for kid in kids
        ]
        # Binarise with join nodes.
        current = adapted[0]
        for other in adapted[1:]:
            current = add(NiceNode("join", bag, [current, other]))
        return current

    def bag_of(original: int) -> frozenset[Node]:
        return decomposition.bags[original]

    top = build(0)
    # Forget everything down to an empty root (standard convention).
    root = chain_between(top, decomposition.bags[0], frozenset())
    return NiceTreeDecomposition(nodes, root)


def max_weight_independent_set(
    graph: Graph,
    weights: dict[Node, float] | None = None,
    decomposition: TreeDecomposition | None = None,
) -> tuple[float, frozenset[Node]]:
    """Weighted maximum independent set via DP over a nice decomposition.

    Uses a minimal triangulation's clique tree when ``decomposition``
    is not supplied.  Runs in O(2^width · poly) — the canonical
    consumer of a good tree decomposition.

    Returns ``(weight, witness set)``.
    """
    if weights is None:
        weights = {v: 1.0 for v in graph.node_set()}
    if set(weights) != set(graph.node_set()):
        raise ValueError("weights must cover exactly the node set")
    if graph.num_nodes == 0:
        return 0.0, frozenset()
    if decomposition is None:
        from repro.core.enumerate import minimal_triangulation

        decomposition = minimal_triangulation(graph).tree_decomposition()
    nice = make_nice(decomposition, graph)

    adjacency = {v: graph.adjacency(v) for v in graph.node_set()}
    # tables[i]: dict mapping independent bag-subset -> (best weight of a
    # partial solution agreeing with the subset, witness set).
    tables: list[dict[frozenset[Node], tuple[float, frozenset[Node]]]] = [
        {} for __ in nice.nodes
    ]

    def process(index: int) -> None:
        node = nice.nodes[index]
        if node.kind == "leaf":
            tables[index] = {frozenset(): (0.0, frozenset())}
            return
        if node.kind == "introduce":
            (child,) = node.children
            v = node.variable
            assert v is not None
            table: dict[frozenset[Node], tuple[float, frozenset[Node]]] = {}
            for subset, (value, witness) in tables[child].items():
                table[subset] = (value, witness)
                if not (adjacency[v] & subset):
                    candidate = (value + weights[v], witness | {v})
                    key = subset | {v}
                    if key not in table or candidate[0] > table[key][0]:
                        table[key] = candidate
            tables[index] = table
            return
        if node.kind == "forget":
            (child,) = node.children
            v = node.variable
            assert v is not None
            table = {}
            for subset, entry in tables[child].items():
                key = subset - {v}
                if key not in table or entry[0] > table[key][0]:
                    table[key] = entry
            tables[index] = table
            return
        # join
        left, right = node.children
        table = {}
        for subset, (lvalue, lwitness) in tables[left].items():
            if subset not in tables[right]:
                continue
            rvalue, rwitness = tables[right][subset]
            overlap = sum(weights[v] for v in subset)
            candidate = (lvalue + rvalue - overlap, lwitness | rwitness)
            if subset not in table or candidate[0] > table[subset][0]:
                table[subset] = candidate
        tables[index] = table

    # Process children before parents: recurse iteratively.
    processed = [False] * len(nice.nodes)
    stack = [nice.root]
    post: list[int] = []
    while stack:
        index = stack.pop()
        post.append(index)
        stack.extend(nice.nodes[index].children)
    for index in reversed(post):
        process(index)

    best_value, best_witness = max(
        tables[nice.root].values(), key=lambda entry: entry[0]
    )
    return best_value, best_witness
