"""Quality metrics for tree decompositions beyond width (extension).

The paper's central practical argument (Section 1) is that *width is
not the only measure that matters*: different applications rank
decompositions by different costs — fill, weighted table sizes for
inference, adhesion dimension/skew for caching trie joins (Kalinsky et
al.), CNF-tree parameters for model counting.  The enumeration makes it
possible to optimise any of them; this module supplies the standard
candidates as plain functions over
:class:`~repro.decomposition.tree_decomposition.TreeDecomposition`, all
usable as ``cost=`` callables for
:func:`repro.core.ranked.enumerate_minimal_triangulations_prioritized`
(via ``Triangulation.tree_decomposition()``) or for post-hoc selection.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graph.graph import Graph, Node

__all__ = [
    "width",
    "fill",
    "log_table_volume",
    "adhesion_sizes",
    "max_adhesion",
    "adhesion_skew",
    "bag_size_histogram",
    "caching_score",
    "summary",
]


def width(decomposition: TreeDecomposition) -> int:
    """Largest bag size minus one (the classic treewidth measure)."""
    return decomposition.width


def fill(decomposition: TreeDecomposition, graph: Graph) -> int:
    """Edges added by saturating every bag (the paper's fill measure)."""
    return decomposition.fill(graph)


def log_table_volume(
    decomposition: TreeDecomposition,
    domain_sizes: Mapping[Node, int] | int = 2,
) -> float:
    """log2 of the total junction-tree table volume Σ Π_{v ∈ bag} |dom(v)|.

    This is the actual memory/time driver of exact inference: a bag
    over variables with domain sizes d₁…d_k stores a table of Π dᵢ
    entries.  ``domain_sizes`` may be a single int (uniform domains) or
    a per-variable mapping.
    """
    total = 0.0
    for bag in decomposition.bags:
        entries = 1.0
        for v in bag:
            size = domain_sizes if isinstance(domain_sizes, int) else domain_sizes[v]
            entries *= size
        total += entries
    return math.log2(total) if total > 0 else float("-inf")


def adhesion_sizes(decomposition: TreeDecomposition) -> list[int]:
    """Sizes of all adhesions (bag intersections along tree edges).

    Adhesions are what flows between bags during message passing /
    caching; Kalinsky et al. observed that their dimension and skew
    drive trie-join cache effectiveness far more than the width does.
    """
    return [
        len(decomposition.bags[a] & decomposition.bags[b])
        for a, b in decomposition.tree_edges
    ]


def max_adhesion(decomposition: TreeDecomposition) -> int:
    """The largest adhesion size (0 for single-bag decompositions)."""
    sizes = adhesion_sizes(decomposition)
    return max(sizes) if sizes else 0


def adhesion_skew(decomposition: TreeDecomposition) -> float:
    """max / mean adhesion size (1.0 when all adhesions are equal).

    A skewed decomposition mixes tiny and huge adhesions, which defeats
    uniform cache budgets; 0 adhesions yield skew 1.0 by convention.
    """
    sizes = adhesion_sizes(decomposition)
    if not sizes:
        return 1.0
    mean = sum(sizes) / len(sizes)
    if mean == 0:
        return 1.0
    return max(sizes) / mean


def bag_size_histogram(decomposition: TreeDecomposition) -> dict[int, int]:
    """Mapping from bag size to the number of bags of that size."""
    histogram: dict[int, int] = {}
    for bag in decomposition.bags:
        histogram[len(bag)] = histogram.get(len(bag), 0) + 1
    return histogram


def caching_score(decomposition: TreeDecomposition) -> float:
    """A Kalinsky-style caching cost: Σ over adhesions of 2^|adhesion|.

    Lower is better: small, balanced adhesions make cached sub-results
    cheap to key and likely to be reused.  Single-bag decompositions
    score 0.
    """
    return float(sum(2 ** size for size in adhesion_sizes(decomposition)))


def summary(
    decomposition: TreeDecomposition,
    graph: Graph | None = None,
    domain_sizes: Mapping[Node, int] | int = 2,
) -> dict[str, float]:
    """All metrics at once (``fill`` only when ``graph`` is given)."""
    result: dict[str, float] = {
        "width": float(decomposition.width),
        "num_bags": float(decomposition.num_bags),
        "log_table_volume": log_table_volume(decomposition, domain_sizes),
        "max_adhesion": float(max_adhesion(decomposition)),
        "adhesion_skew": adhesion_skew(decomposition),
        "caching_score": caching_score(decomposition),
    }
    if graph is not None:
        result["fill"] = float(decomposition.fill(graph))
    return result
