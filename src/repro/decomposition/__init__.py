"""Tree decompositions: data type, clique trees, proper-TD enumeration."""

from repro.decomposition.clique_tree import clique_graph, clique_tree
from repro.decomposition.io import parse_pace_td, read_pace_td, write_pace_td
from repro.decomposition.metrics import (
    adhesion_sizes,
    adhesion_skew,
    caching_score,
    log_table_volume,
    max_adhesion,
)
from repro.decomposition.nice import (
    NiceTreeDecomposition,
    make_nice,
    max_weight_independent_set,
)
from repro.decomposition.proper import (
    enumerate_proper_tree_decompositions,
    tree_decompositions_of_triangulation,
)
from repro.decomposition.spanning_trees import (
    enumerate_maximum_spanning_trees,
    enumerate_spanning_trees,
    maximum_spanning_tree,
    maximum_spanning_weight,
)
from repro.decomposition.tree_decomposition import TreeDecomposition

__all__ = [
    "TreeDecomposition",
    "clique_tree",
    "clique_graph",
    "write_pace_td",
    "read_pace_td",
    "parse_pace_td",
    "adhesion_sizes",
    "adhesion_skew",
    "caching_score",
    "log_table_volume",
    "max_adhesion",
    "NiceTreeDecomposition",
    "make_nice",
    "max_weight_independent_set",
    "enumerate_proper_tree_decompositions",
    "tree_decompositions_of_triangulation",
    "enumerate_maximum_spanning_trees",
    "enumerate_spanning_trees",
    "maximum_spanning_tree",
    "maximum_spanning_weight",
]
