"""Enumerating the proper tree decompositions (system S22; paper Section 5).

The paper's Theorem 5.1 and Corollary 5.2: the map M sending a minimal
triangulation h to the bag-equivalence class of tree decompositions
with bags ``MaxClq(h)`` is a bijection onto the ≡b-classes of proper
tree decompositions, the members of one class are the maximum spanning
trees of the clique graph of h, and composing with the minimal
triangulation enumerator yields all proper tree decompositions in
incremental polynomial time.

Two granularities are exposed, as discussed at the end of the paper's
Section 5:

* ``per_class=True`` — one representative per ≡b-class (one canonical
  clique tree per minimal triangulation);
* ``per_class=False`` — every proper tree decomposition, enumerating
  all maximum spanning trees within each class with polynomial delay.

For disconnected graphs the decomposition tree must still be a single
tree; component clique trees are linked through canonical zero-overlap
edges.  The linking choice does not affect bags, so the ≡b-classes are
enumerated completely either way; only one linking representative per
spanning-forest combination is produced (documented substitution —
the paper's experiments use connected graphs).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.chordal.triangulate import Triangulator
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.core.triangulation import Triangulation
from repro.decomposition.clique_tree import clique_graph, clique_tree
from repro.decomposition.spanning_trees import enumerate_maximum_spanning_trees
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.graph.graph import Graph

__all__ = [
    "tree_decompositions_of_triangulation",
    "enumerate_proper_tree_decompositions",
]


def tree_decompositions_of_triangulation(
    triangulation: Triangulation | Graph,
) -> Iterator[TreeDecomposition]:
    """Enumerate the ≡b-class M(h) for a chordal graph / triangulation h.

    Yields every tree decomposition whose bags are ``MaxClq(h)``, i.e.
    every maximum spanning tree of the clique graph of h, with
    polynomial delay.  Component clique trees of a disconnected h are
    linked canonically (see module docstring).
    """
    chordal = (
        triangulation.graph
        if isinstance(triangulation, Triangulation)
        else triangulation
    )
    cliques, weighted_edges = clique_graph(chordal)
    if not cliques:
        yield TreeDecomposition.build([frozenset()], [])
        return
    num_cliques = len(cliques)
    for tree_edge_indices in enumerate_maximum_spanning_trees(
        num_cliques, weighted_edges
    ):
        edges = [
            (weighted_edges[index][0], weighted_edges[index][1])
            for index in tree_edge_indices
        ]
        edges.extend(_component_links(num_cliques, edges))
        yield TreeDecomposition.build(cliques, edges)


def _component_links(
    num_cliques: int, edges: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Chain the forest components through canonical extra edges."""
    parent = list(range(num_cliques))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        parent[find(a)] = find(b)
    roots = sorted({find(i) for i in range(num_cliques)})
    return list(zip(roots, roots[1:]))


def enumerate_proper_tree_decompositions(
    graph: Graph,
    triangulator: str | Triangulator = "mcs_m",
    per_class: bool = False,
    mode: str = "UG",
) -> Iterator[TreeDecomposition]:
    """Enumerate the proper tree decompositions of ``graph``.

    Parameters
    ----------
    graph:
        Any finite simple graph.
    triangulator:
        Heuristic plugged into the underlying minimal-triangulation
        enumeration.
    per_class:
        When True, yield one representative per bag-equivalence class
        (the canonical clique tree of each minimal triangulation);
        when False, yield every member of every class.
    mode:
        Printing discipline of the underlying EnumMIS (``"UG"``/``"UP"``).

    Yields
    ------
    TreeDecomposition
        Proper tree decompositions of ``graph``, in incremental
        polynomial time (paper Corollary 5.2), without duplicates.
    """
    for triangulation in enumerate_minimal_triangulations(
        graph, triangulator=triangulator, mode=mode
    ):
        if per_class:
            yield clique_tree(triangulation.graph)
        else:
            yield from tree_decompositions_of_triangulation(triangulation)
