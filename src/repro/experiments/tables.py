"""Quality statistics tables (part of S26; paper Tables 1 and 2).

Each row aggregates one dataset family under one triangulation
algorithm, with the exact columns of the paper:

* ``#trng``   — average number of triangulations generated;
* ``min-w`` / ``min-f`` — average best width / fill observed;
* ``#≤w1`` / ``#≤f1``   — average number (and percentage) of results at
  least as good as the *first* result, which is what the bare
  heuristic alone would return;
* ``%w↓`` / ``%f↓``      — average relative improvement of the best
  result over the first (maximum over the family in parentheses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import EnumerationTrace, run_enumeration
from repro.graph.graph import Graph

__all__ = ["QualityRow", "quality_table", "render_quality_table"]


@dataclass(frozen=True)
class QualityRow:
    """One aggregated row of Table 1 (width) or Table 2 (fill)."""

    dataset: str
    num_graphs: int
    avg_count: float
    avg_best: float
    avg_leq_first: float
    pct_leq_first: float
    avg_improvement_pct: float
    max_improvement_pct: float


def quality_table(
    suites: dict[str, list[tuple[str, Graph]]],
    triangulator: str,
    measure: str,
    time_budget: float,
    max_results: int | None = None,
    skip_completed: bool = False,
) -> list[QualityRow]:
    """Compute Table 1 (``measure="width"``) or Table 2 (``measure="fill"``).

    Parameters
    ----------
    suites:
        Mapping from dataset name to its (name, graph) instances.
    skip_completed:
        The paper's tables "include only the experiments where the
        enumeration did not complete" within the budget; set True to
        apply the same filter (graphs whose enumeration finishes are
        dropped from the aggregation unless all of them finish).
    """
    if measure not in {"width", "fill"}:
        raise ValueError("measure must be 'width' or 'fill'")
    rows = []
    for dataset, instances in suites.items():
        traces = [
            run_enumeration(
                graph,
                triangulator=triangulator,
                time_budget=time_budget,
                max_results=max_results,
                name=name,
            )
            for name, graph in instances
        ]
        kept = [t for t in traces if not (skip_completed and t.completed)]
        if not kept:
            kept = traces
        rows.append(_aggregate(dataset, kept, measure))
    return rows


def _aggregate(
    dataset: str, traces: list[EnumerationTrace], measure: str
) -> QualityRow:
    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    counts = [float(t.count) for t in traces]
    if measure == "width":
        best = [float(t.min_width) for t in traces]
        leq = [float(t.num_at_most_first_width) for t in traces]
        improvement = [t.width_improvement_percent for t in traces]
    else:
        best = [float(t.min_fill) for t in traces]
        leq = [float(t.num_at_most_first_fill) for t in traces]
        improvement = [t.fill_improvement_percent for t in traces]
    total_count = sum(counts)
    return QualityRow(
        dataset=dataset,
        num_graphs=len(traces),
        avg_count=mean(counts),
        avg_best=mean(best),
        avg_leq_first=mean(leq),
        pct_leq_first=100.0 * sum(leq) / total_count if total_count else 0.0,
        avg_improvement_pct=mean(improvement),
        max_improvement_pct=max(improvement) if improvement else 0.0,
    )


def render_quality_table(rows: list[QualityRow], measure: str) -> str:
    """Render rows in the layout of the paper's Tables 1/2."""
    tag = "w" if measure == "width" else "f"
    headers = [
        "Dataset",
        "#trng",
        f"min-{tag}",
        f"#<={tag}1 (%)",
        f"%{tag}v (max)",
    ]
    body = []
    for row in rows:
        body.append(
            [
                f"{row.dataset} ({row.num_graphs})",
                f"{row.avg_count:.1f}",
                f"{row.avg_best:.1f}",
                f"{row.avg_leq_first:.1f} ({row.pct_leq_first:.1f}%)",
                f"{row.avg_improvement_pct:.1f} ({row.max_improvement_pct:.1f})",
            ]
        )
    from repro.experiments.render import ascii_table

    return ascii_table(headers, body)
