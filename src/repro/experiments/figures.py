"""Figure data builders (part of S26; paper Figures 6–10).

Each function regenerates the data series behind one figure of the
paper's Section 6; the benchmark modules print them as aligned tables
(this is a terminal reproduction — the *series* are the artefact, the
plotting is left to the reader).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import EnumerationTrace, run_enumeration
from repro.graph.graph import Graph

__all__ = [
    "DelayPoint",
    "fig6_delay_by_edges",
    "fig7_delay_by_size",
    "fig8_printing_modes",
    "fig9_cumulative_results",
    "fig10_quality_over_time",
]


@dataclass(frozen=True)
class DelayPoint:
    """One scatter point of Figures 6/7: a graph and its average delay."""

    dataset: str
    name: str
    num_nodes: int
    num_edges: int
    count: int
    average_delay: float
    completed: bool


def fig6_delay_by_edges(
    suites: dict[str, list[tuple[str, Graph]]],
    triangulator: str,
    time_budget: float,
    max_results: int | None = None,
) -> list[DelayPoint]:
    """Figure 6: average delay vs #edges over the PGM suites.

    One point per graph; the paper plots the same scatter in log scale,
    one panel per triangulation algorithm.
    """
    points = []
    for dataset, instances in suites.items():
        for name, graph in instances:
            trace = run_enumeration(
                graph,
                triangulator=triangulator,
                time_budget=time_budget,
                max_results=max_results,
                name=name,
            )
            points.append(
                DelayPoint(
                    dataset=dataset,
                    name=name,
                    num_nodes=graph.num_nodes,
                    num_edges=graph.num_edges,
                    count=trace.count,
                    average_delay=trace.average_delay,
                    completed=trace.completed,
                )
            )
    return points


def fig7_delay_by_size(
    sweep: list[tuple[str, Graph, int, float]],
    triangulator: str,
    time_budget: float,
    max_results: int | None = None,
) -> list[tuple[int, float, float]]:
    """Figure 7: (n, p, average delay) for the G(n, p) sweep."""
    series = []
    for name, graph, n, p in sweep:
        trace = run_enumeration(
            graph,
            triangulator=triangulator,
            time_budget=time_budget,
            max_results=max_results,
            name=name,
        )
        series.append((n, p, trace.average_delay))
    return series


def fig8_printing_modes(
    graph: Graph,
    triangulator: str = "mcs_m",
    time_budget: float | None = None,
    max_results: int | None = None,
) -> dict[str, EnumerationTrace]:
    """Figure 8: the same enumeration under UG and UP printing.

    UG (upon generation) prints in bursts; UP (upon pop) is steadier;
    both finish at the same time with the same result set.
    """
    return {
        mode: run_enumeration(
            graph,
            triangulator=triangulator,
            time_budget=time_budget,
            max_results=max_results,
            mode=mode,
            name=f"fig8_{mode}",
        )
        for mode in ("UG", "UP")
    }


def fig9_cumulative_results(
    trace: EnumerationTrace, bins: int = 30
) -> list[tuple[float, int, int, int]]:
    """Figure 9: cumulative (all, min-width, ≤w1) result counts over time."""
    return trace.cumulative_counts(bins=bins)


def fig10_quality_over_time(
    trace: EnumerationTrace,
) -> dict[str, list[tuple[float, int]]]:
    """Figure 10: running minimum width and fill over time."""
    return {
        "width": trace.running_minimum("width"),
        "fill": trace.running_minimum("fill"),
    }
