"""One-shot consolidated experiment report (part of S26).

``full_report`` regenerates a compact version of every paper artefact
(Tables 1–2, Figures 6–10 series, TPC-H table) in a single run with a
configurable budget and renders it as plain text — the same content
the individual benchmarks print, bundled for quick inspection:

>>> from repro.experiments.report import full_report
>>> print(full_report(budget=0.5, scale=0.03))         # doctest: +SKIP
"""

from __future__ import annotations

import io
import time

from repro.experiments.figures import (
    fig10_quality_over_time,
    fig9_cumulative_results,
)
from repro.experiments.render import ascii_table
from repro.experiments.runner import run_enumeration
from repro.experiments.tables import quality_table, render_quality_table
from repro.workloads.pgm import pgm_suites, promedas_like
from repro.workloads.random_graphs import random_sweep
from repro.workloads.tpch import tpch_suite

__all__ = ["full_report"]


def full_report(
    budget: float = 1.0,
    scale: float = 0.06,
    max_results: int = 300,
    tpch_cap: int = 400,
) -> str:
    """Regenerate all experiment artefacts and render them as text."""
    out = io.StringIO()

    def section(title: str) -> None:
        out.write(f"\n{'=' * 66}\n{title}\n{'=' * 66}\n")

    suites = pgm_suites(scale=scale)

    section("Tables 1 and 2 — width / fill statistics")
    for triangulator in ("mcs_m", "lb_triang"):
        for measure in ("width", "fill"):
            rows = quality_table(
                suites,
                triangulator,
                measure=measure,
                time_budget=budget,
                max_results=max_results,
            )
            out.write(f"\n[{triangulator} / {measure}]\n")
            out.write(render_quality_table(rows, measure))
            out.write("\n")

    section("Figure 7 — delay on G(n, p) (scaled sweep)")
    sweep = random_sweep(node_counts=(30, 50), densities=(0.3, 0.5, 0.7))
    rows = []
    for name, graph, n, p in sweep:
        trace = run_enumeration(
            graph, time_budget=budget, max_results=max_results, name=name
        )
        rows.append([str(n), f"{p:.1f}", str(trace.count), f"{trace.average_delay:.4f}"])
    out.write(ascii_table(["n", "p", "#results", "avg delay (s)"], rows))
    out.write("\n")

    section("Figures 9 and 10 — case study")
    trace = run_enumeration(
        promedas_like(num_diseases=40, num_findings=70, seed=11),
        time_budget=max(budget * 3, 3.0),
        name="case_study",
    )
    rows = [
        [f"{t:.2f}", str(total), str(min_w), str(leq)]
        for t, total, min_w, leq in fig9_cumulative_results(trace, bins=8)
    ]
    out.write(ascii_table(["t (s)", "all", "min-width", "<=w1"], rows))
    quality = fig10_quality_over_time(trace)
    out.write("\nrunning min width: " + " -> ".join(
        f"{w}@{t:.2f}s" for t, w in quality["width"]
    ))
    out.write("\nrunning min fill : " + " -> ".join(
        f"{f}@{t:.2f}s" for t, f in quality["fill"]
    ))
    out.write("\n")

    section("TPC-H — per-query enumeration")
    rows = []
    from repro.chordal.peo import is_chordal
    from repro.core.enumerate import enumerate_minimal_triangulations

    for name, graph in tpch_suite():
        start = time.monotonic()
        count = 0
        for __ in enumerate_minimal_triangulations(graph):
            count += 1
            if count >= tpch_cap:
                break
        rows.append(
            [
                name,
                str(graph.num_nodes),
                str(graph.num_edges),
                "yes" if is_chordal(graph) else "no",
                str(count),
                f"{time.monotonic() - start:.2f}",
            ]
        )
    out.write(
        ascii_table(["query", "n", "m", "chordal", "#mintri", "time (s)"], rows)
    )
    out.write("\n")
    return out.getvalue()
