"""Experiment harness: timed runs, tables 1–2 and figures 6–10 of the paper."""

from repro.experiments.figures import (
    DelayPoint,
    fig10_quality_over_time,
    fig6_delay_by_edges,
    fig7_delay_by_size,
    fig8_printing_modes,
    fig9_cumulative_results,
)
from repro.experiments.render import ascii_table, sparkline
from repro.experiments.report import full_report
from repro.experiments.runner import EnumerationTrace, ResultRecord, run_enumeration
from repro.experiments.tables import QualityRow, quality_table, render_quality_table

__all__ = [
    "run_enumeration",
    "EnumerationTrace",
    "ResultRecord",
    "QualityRow",
    "quality_table",
    "render_quality_table",
    "DelayPoint",
    "fig6_delay_by_edges",
    "fig7_delay_by_size",
    "fig8_printing_modes",
    "fig9_cumulative_results",
    "fig10_quality_over_time",
    "ascii_table",
    "full_report",
    "sparkline",
]
