"""Timed enumeration runs and traces (part of S26).

The paper's experiments all share one shape: run the enumeration on a
graph for a wall-clock budget (30 minutes there, configurable here),
record when each minimal triangulation appears and its width/fill, and
derive statistics.  :func:`run_enumeration` produces an
:class:`EnumerationTrace` capturing exactly that, which the table and
figure builders consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chordal.triangulate import Triangulator
from repro.core.enumerate import enumerate_minimal_triangulations
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["ResultRecord", "EnumerationTrace", "run_enumeration"]


@dataclass(frozen=True)
class ResultRecord:
    """One enumerated triangulation: arrival time and quality measures."""

    index: int
    elapsed: float
    width: int
    fill: int


@dataclass
class EnumerationTrace:
    """The outcome of one timed enumeration run."""

    name: str
    triangulator: str
    mode: str
    records: list[ResultRecord] = field(default_factory=list)
    completed: bool = False
    elapsed: float = 0.0
    stats: EnumMISStatistics = field(default_factory=EnumMISStatistics)
    backend: str = "serial"
    workers: int | None = None

    # ------------------------------------------------------------------
    # Derived statistics (the columns of the paper's Tables 1 and 2)
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """#trng — number of triangulations produced."""
        return len(self.records)

    @property
    def average_delay(self) -> float:
        """Average time between consecutive results, in seconds."""
        if not self.records:
            return self.elapsed
        return self.elapsed / len(self.records)

    @property
    def first_width(self) -> int:
        """w1 — width of the first result (the bare heuristic's output)."""
        return self.records[0].width if self.records else -1

    @property
    def first_fill(self) -> int:
        """f1 — fill of the first result."""
        return self.records[0].fill if self.records else -1

    @property
    def min_width(self) -> int:
        """min-w — best width observed."""
        return min(r.width for r in self.records) if self.records else -1

    @property
    def min_fill(self) -> int:
        """min-f — best fill observed."""
        return min(r.fill for r in self.records) if self.records else -1

    @property
    def num_at_most_first_width(self) -> int:
        """#≤w1 — results at least as good as the first, by width."""
        if not self.records:
            return 0
        return sum(1 for r in self.records if r.width <= self.first_width)

    @property
    def num_at_most_first_fill(self) -> int:
        """#≤f1 — results at least as good as the first, by fill."""
        if not self.records:
            return 0
        return sum(1 for r in self.records if r.fill <= self.first_fill)

    @property
    def width_improvement_percent(self) -> float:
        """%w↓ — relative width reduction of the best over the first."""
        if not self.records or self.first_width <= 0:
            return 0.0
        return 100.0 * (self.first_width - self.min_width) / self.first_width

    @property
    def fill_improvement_percent(self) -> float:
        """%f↓ — relative fill reduction of the best over the first."""
        if not self.records or self.first_fill <= 0:
            return 0.0
        return 100.0 * (self.first_fill - self.min_fill) / self.first_fill

    def running_minimum(self, measure: str) -> list[tuple[float, int]]:
        """Return the (time, running best) series for ``"width"``/``"fill"``.

        This is the data behind the paper's Figure 10.
        """
        best: int | None = None
        series: list[tuple[float, int]] = []
        for record in self.records:
            value = record.width if measure == "width" else record.fill
            if best is None or value < best:
                best = value
                series.append((record.elapsed, best))
        return series

    def cumulative_counts(
        self, bins: int = 30
    ) -> list[tuple[float, int, int, int]]:
        """Binned cumulative counts: (t, all, min-width-so-far, ≤w1).

        The three series of the paper's Figure 9.  ``min-width-so-far``
        counts results matching the overall minimum width.
        """
        if not self.records:
            return []
        horizon = max(self.elapsed, self.records[-1].elapsed) or 1.0
        min_width = self.min_width
        first_width = self.first_width
        series = []
        for b in range(1, bins + 1):
            cutoff = horizon * b / bins
            visible = [r for r in self.records if r.elapsed <= cutoff]
            series.append(
                (
                    cutoff,
                    len(visible),
                    sum(1 for r in visible if r.width == min_width),
                    sum(1 for r in visible if r.width <= first_width),
                )
            )
        return series


def run_enumeration(
    graph: Graph,
    triangulator: str | Triangulator = "mcs_m",
    time_budget: float | None = None,
    max_results: int | None = None,
    mode: str = "UG",
    name: str = "",
    backend: str = "serial",
    workers: int | None = None,
) -> EnumerationTrace:
    """Enumerate under a wall-clock/result budget and record a trace.

    Mirrors the paper's 30-minute runs (Section 6.2): the enumeration
    stops when the budget is exhausted or, if it finishes earlier,
    ``completed`` is set on the trace.  ``backend``/``workers`` select
    the execution strategy through the enumeration engine
    (:mod:`repro.engine`); the trace's ``stats`` are then the aggregate
    over the coordinator and every worker.
    """
    stats = EnumMISStatistics()
    label = (
        triangulator if isinstance(triangulator, str) else triangulator.name
    )
    trace = EnumerationTrace(
        name=name,
        triangulator=label,
        mode=mode,
        stats=stats,
        backend=backend,
        workers=workers,
    )
    start = time.monotonic()
    for index, result in enumerate(
        enumerate_minimal_triangulations(
            graph,
            triangulator=triangulator,
            mode=mode,
            stats=stats,
            backend=backend,
            workers=workers,
        )
    ):
        elapsed = time.monotonic() - start
        trace.records.append(
            ResultRecord(index=index, elapsed=elapsed, width=result.width, fill=result.fill)
        )
        if time_budget is not None and elapsed >= time_budget:
            break
        if max_results is not None and len(trace.records) >= max_results:
            break
    else:
        trace.completed = True
    trace.elapsed = time.monotonic() - start
    return trace
