"""Plain-text rendering helpers for benchmark output (part of S26)."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_table", "sparkline"]


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned fixed-width table with a header rule."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [
        max(len(row[col]) for row in table) for col in range(len(headers))
    ]
    lines = []
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(table[0], widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in table[1:]:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a crude one-line chart of ``values`` (terminal figures)."""
    if not values:
        return ""
    resampled = []
    for i in range(width):
        position = i * (len(values) - 1) / max(width - 1, 1)
        resampled.append(values[int(round(position))])
    low, high = min(resampled), max(resampled)
    span = (high - low) or 1.0
    return "".join(
        _BLOCKS[int((value - low) / span * (len(_BLOCKS) - 1))]
        for value in resampled
    )
