"""Pluggable enumeration engine (orchestration over EnumMIS).

This subsystem separates *what* to enumerate from *how* it executes.
An :class:`EnumerationJob` describes the problem — graph, EnumMIS
printing mode, ``Extend`` heuristic, ranking, answer/time budgets,
checkpointing — and an :class:`EnumerationEngine` dispatches it to a
registered backend:

* ``serial``  — the single-process reference pipeline;
* ``sharded`` — the answer queue Q partitioned across a
  multiprocessing worker pool: the graph ships once per job as a
  shared-memory packed adjacency segment, separator sets travel in the
  interned packed wire format of :mod:`repro.engine.wire`, batches are
  sized to the job's ``batch_target_ms`` by the cost-driven
  :class:`~repro.engine.batching.AdaptiveBatcher`, each worker keeps a
  warm interned-separator/crossing-cache SGR for its lifetime,
  deduplication is centralised in a coordinator, and per-worker
  :class:`~repro.sgr.enum_mis.EnumMISStatistics` — stage timers
  included — merge into one aggregate report.

* ``distributed`` — the same coordinator discipline over TCP: an
  asyncio coordinator ships the packed adjacency once per connected
  host and fans batches out to ``repro worker --connect`` processes on
  any machine, with elastic membership (workers join/leave mid-job)
  and exactly-once requeue of batches owned by lost hosts
  (:mod:`repro.engine.distributed`).

All backends enumerate exactly the same answer set — ``MaxInd`` of
the separator graph is canonical, and only the execution strategy
differs.  Long enumerations can checkpoint their (Q, P, V) state and
resume after interruption (:mod:`repro.engine.checkpoint`); jobs whose
graph decomposes into several regions (disconnected inputs,
``decompose="atoms"``) checkpoint per-region sections plus the
cross-region product state, so they resume without re-yielding
delivered answers too.

Quickstart::

    from repro.engine import EnumerationEngine, EnumerationJob

    job = EnumerationJob(graph, max_results=1000)
    result = EnumerationEngine("sharded", workers=4).run(job)
    print(result.summary())
    print(result.stats.snapshot())
"""

from repro.engine.base import (
    BatchFailedError,
    EngineError,
    EnumerationBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.checkpoint import (
    CheckpointDocument,
    CheckpointError,
    CheckpointIntegrityError,
    CheckpointManager,
    CheckpointState,
    region_fingerprint,
)
from repro.engine.engine import EnumerationEngine
from repro.engine.job import EnumerationJob
from repro.engine.result import AnswerRecord, EnumerationResult
from repro.engine.wire import WireDecodeError

# Importing the backend modules registers them.
from repro.engine import serial as _serial  # noqa: E402,F401
from repro.engine import sharded as _sharded  # noqa: E402,F401
from repro.engine import distributed as _distributed  # noqa: E402,F401

__all__ = [
    "AnswerRecord",
    "BatchFailedError",
    "CheckpointDocument",
    "CheckpointError",
    "CheckpointIntegrityError",
    "CheckpointManager",
    "CheckpointState",
    "region_fingerprint",
    "EngineError",
    "EnumerationBackend",
    "EnumerationEngine",
    "EnumerationJob",
    "EnumerationResult",
    "WireDecodeError",
    "available_backends",
    "get_backend",
    "register_backend",
]
