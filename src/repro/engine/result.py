"""Materialised outcome of an engine run: answers, timings, merged stats."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.triangulation import Triangulation
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["AnswerRecord", "EnumerationResult"]


@dataclass(frozen=True)
class AnswerRecord:
    """One enumerated triangulation: arrival order, time and quality."""

    index: int
    elapsed: float
    width: int
    fill: int


@dataclass
class EnumerationResult:
    """What :meth:`repro.engine.EnumerationEngine.run` returns.

    ``stats`` is the aggregate over the coordinator and every worker —
    per-worker counters are folded in with
    :meth:`~repro.sgr.enum_mis.EnumMISStatistics.add` as task results
    arrive, so the totals are directly comparable with a serial run of
    the same job.
    """

    backend: str
    workers: int
    triangulations: list[Triangulation] = field(default_factory=list)
    records: list[AnswerRecord] = field(default_factory=list)
    stats: EnumMISStatistics = field(default_factory=EnumMISStatistics)
    elapsed: float = 0.0
    completed: bool = False

    @property
    def count(self) -> int:
        """Number of triangulations produced."""
        return len(self.records)

    @property
    def mean_batch_latency(self) -> float:
        """Mean dispatch → completion time of one task batch, seconds.

        0.0 when the run dispatched no batches (plain serial jobs
        bypass the coordinator entirely).
        """
        if not self.stats.batches_dispatched:
            return 0.0
        return (
            self.stats.batch_roundtrip_ns
            / self.stats.batches_dispatched
            / 1e9
        )

    @property
    def ipc_payload_bytes_per_batch(self) -> float:
        """Mean wire bytes (both directions) per dispatched batch."""
        if not self.stats.batches_dispatched:
            return 0.0
        return self.stats.ipc_payload_bytes / self.stats.batches_dispatched

    @property
    def min_width(self) -> int:
        """Best width observed (-1 when no answers)."""
        return min((r.width for r in self.records), default=-1)

    @property
    def min_fill(self) -> int:
        """Best fill observed (-1 when no answers)."""
        return min((r.fill for r in self.records), default=-1)

    def best(self, measure: str = "width") -> Triangulation:
        """Return the best triangulation by ``"width"`` or ``"fill"``."""
        if not self.triangulations:
            raise ValueError("no triangulations were produced")
        if measure == "width":
            return min(self.triangulations, key=lambda t: (t.width, t.fill))
        if measure == "fill":
            return min(self.triangulations, key=lambda t: (t.fill, t.width))
        raise ValueError(f"measure must be 'width' or 'fill', got {measure!r}")

    def summary(self) -> str:
        """One-line human-readable report.

        Clean runs stay one clause; runs that exercised the supervision
        machinery (batch retries, quarantines, rejected workers) say
        so, because a correct answer set that needed salvage is worth
        knowing about.
        """
        state = "complete" if self.completed else "stopped"
        line = (
            f"{self.count} triangulations via {self.backend!r}"
            f" ({self.workers} worker{'s' if self.workers != 1 else ''},"
            f" {state}) in {self.elapsed:.3f}s;"
            f" best width {self.min_width}, best fill {self.min_fill}"
        )
        stats = self.stats
        supervision = []
        if stats.batch_retries:
            supervision.append(f"{stats.batch_retries} batch retries")
        if stats.batches_quarantined:
            supervision.append(
                f"{stats.batches_quarantined} quarantined "
                f"({stats.poison_answers} answers salvaged serially)"
            )
        if stats.protocol_rejections:
            supervision.append(
                f"{stats.protocol_rejections} protocol rejections"
            )
        if supervision:
            line += "; supervision: " + ", ".join(supervision)
        return line
