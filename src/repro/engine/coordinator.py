"""The sharded EnumMIS coordinator (answer-queue partitioning).

This is the paper's Figure 1 control loop with the expensive inner
steps — the ``direction`` edge-oracle sweep and the ``Extend``
triangulation — farmed out to a task runner, while the cheap,
order-sensitive bookkeeping stays in one place:

* the coordinator owns Q (produced, unprocessed answers), P (processed
  answers), V (SGR nodes generated so far) and the deduplication set;
* popped answers are batched into tasks ``(J, V-snapshot)`` and
  dispatched; results are absorbed as they complete, so item A can be
  extending on one worker while item B's extensions are being deduped;
* when Q runs dry and nothing is in flight, the next SGR node v is
  pulled from the (serial, polynomial-delay) node iterator and every
  answer of P is re-examined in the direction of v — sharded across
  the pool in chunks, as a barrier.

Correctness is order-agnostic exactly as in the serial algorithm: an
answer popped and dispatched against the *snapshot* of V is re-examined
later against any nodes discovered afterwards, because it sits in P
when those nodes arrive.  At termination (Q empty, nothing in flight,
iterator exhausted) every answer of P has been processed in the
direction of every node of V = all SGR nodes — the same invariant the
serial proof closes with, so the produced set is exactly
``MaxInd(G(x))`` with no duplicates (deduplication is centralised in
the coordinator).

Checkpointing piggybacks on the same state: outside a barrier, (Q ∪
in-flight answers, P minus in-flight, V) is always a consistent resume
point; during a barrier on node v, the snapshot simply excludes v from
V (v is re-pulled and the barrier re-run on resume — duplicate work,
never wrong answers).  The coordinator does not own the checkpoint
file: it reports its control snapshot to a *sink* (one file may hold
many region sections — see :mod:`repro.engine.checkpoint`) and is
handed a pre-validated :class:`~repro.engine.checkpoint.CheckpointState`
to resume from.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, wait

from repro.chordal.minimal_separators import minimal_separator_masks
from repro.chordal.triangulate import Triangulator
from repro.core.extend import extend_parallel_set
from repro.engine.checkpoint import CheckpointError, CheckpointState
from repro.engine.pool import InlineRunner, PoolRunner
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics, _AnswerQueue

__all__ = ["MISCoordinator"]

Answer = frozenset[int]


class MISCoordinator:
    """Sharded EnumMIS over one connected region of the input graph.

    Yields answers as frozensets of separator *masks*; the backend
    layer materialises them into Triangulation objects.

    ``checkpoint`` is a sink object exposing ``every`` (save cadence in
    newly generated answers) and ``save()`` (persist the document this
    coordinator's section belongs to); ``restore_state`` is this
    region's section of a loaded checkpoint.  Restoration — including
    the fast-forward of the deterministic separator iterator and its
    prefix validation — happens eagerly at construction, so a sink may
    snapshot any coordinator of a job the moment all of them exist.
    """

    def __init__(
        self,
        region: Graph,
        region_mask: int,
        runner: "InlineRunner | PoolRunner",
        *,
        mode: str = "UG",
        triangulator: str | Triangulator = "mcs_m",
        priority: Callable[[Answer], object] | None = None,
        stats: EnumMISStatistics | None = None,
        checkpoint=None,
        restore_state: CheckpointState | None = None,
        region_fingerprint: str = "",
    ) -> None:
        self._region = region
        self._region_mask = region_mask
        self._runner = runner
        self._mode = mode
        self._triangulator = triangulator
        self._priority = priority
        self._stats = stats if stats is not None else EnumMISStatistics()
        self._checkpoint = checkpoint
        self._region_fingerprint = region_fingerprint

        self._queue = _AnswerQueue(priority)
        self._seen: set[Answer] = set()
        self._dispatched: set[Answer] = set()
        self._yielded: set[Answer] = set()
        self._known: list[int] = []
        self._exhausted = False
        # future → ("pop" | "barrier", answers covered by the task)
        self._inflight: dict[Future, tuple[str, tuple[Answer, ...]]] = {}
        # Popped from Q but not yet handed to the runner — still "queued"
        # as far as a checkpoint is concerned.
        self._popping: list[Answer] = []
        self._barrier_node: int | None = None
        self._since_save = 0
        self._resumed = restore_state is not None
        if restore_state is not None:
            self._node_iterator = self._restore(restore_state)
        else:
            self._node_iterator = minimal_separator_masks(region)

    # ------------------------------------------------------------------
    # Sizing policy
    # ------------------------------------------------------------------

    def _pop_chunk_size(self, queued: int) -> int:
        """Answers per dispatched task: keep every worker busy without
        starving the pool of work items to steal."""
        workers = self._runner.workers
        if workers <= 1:
            return 1
        return max(1, min(16, queued // (2 * workers) or 1))

    def _max_inflight(self) -> int:
        workers = self._runner.workers
        return 1 if workers <= 1 else workers * 3

    def _barrier_chunks(self, answers: list[Answer]) -> Iterator[list[Answer]]:
        workers = max(1, self._runner.workers)
        size = max(1, min(32, -(-len(answers) // (4 * workers))))
        for start in range(0, len(answers), size):
            yield answers[start : start + size]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def barrier_active(self) -> bool:
        """Whether a barrier node is mid-flight (its pull is re-counted
        on resume, so document-level stats subtract one generated node
        per active barrier)."""
        return self._barrier_node is not None

    def control_snapshot(self) -> CheckpointState:
        """This region's (Q, P, V, yielded) as a checkpoint section."""
        # Answers whose (J, V-snapshot) processing has not completed go
        # back to Q: in-flight task results would be lost, and a batch
        # interrupted mid-pop was never submitted at all.
        requeue: set[Answer] = set(self._popping)
        for kind, answers in self._inflight.values():
            if kind == "pop":
                requeue.update(answers)
        known = list(self._known)
        if self._barrier_node is not None:
            known.remove(self._barrier_node)
        return CheckpointState(
            region=self._region_fingerprint,
            known_nodes=known,
            exhausted=self._exhausted and self._barrier_node is None,
            queue=self._queue.items() + sorted(requeue, key=sorted),
            processed=sorted(self._dispatched - requeue, key=sorted),
            yielded=sorted(self._yielded, key=sorted),
        )

    def _save_checkpoint(self) -> None:
        if self._checkpoint is not None:
            self._checkpoint.save()
            self._since_save = 0

    def _maybe_checkpoint(self) -> None:
        if (
            self._checkpoint is not None
            and self._since_save >= self._checkpoint.every
        ):
            self._save_checkpoint()

    def _restore(self, state: CheckpointState) -> Iterator[int]:
        """Load (Q, P, V) and return the node iterator, fast-forwarded.

        Statistics are *not* restored here: they are shared by every
        region of a job and restored once, at the document level.
        """
        node_iterator = minimal_separator_masks(self._region)
        prefix = list(itertools.islice(node_iterator, len(state.known_nodes)))
        if prefix != state.known_nodes:
            raise CheckpointError(
                "separator enumeration prefix does not match the "
                "checkpoint; the graph differs from the checkpointed run"
            )
        self._known = list(state.known_nodes)
        self._exhausted = state.exhausted
        self._dispatched = set(state.processed)
        self._yielded = set(state.yielded)
        self._seen = set(state.processed)
        for answer in state.queue:
            if answer not in self._seen:
                self._seen.add(answer)
                self._queue.push(answer)
        return node_iterator

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def _seed(self) -> Answer:
        """Compute Extend(∅) locally — the first answer of the run."""
        self._stats.extend_calls += 1
        family = extend_parallel_set(
            self._region, (), self._triangulator
        )
        return frozenset(self._region.mask_of(sep) for sep in family)

    def _absorb(self, result) -> list[Answer]:
        """Fold a batch result into (stats, seen, Q); return new answers."""
        candidates, delta = result
        self._stats.add(delta)
        fresh: list[Answer] = []
        for masks in candidates:
            answer = frozenset(masks)
            if answer in self._seen:
                self._stats.duplicates_suppressed += 1
            else:
                self._seen.add(answer)
                self._stats.answers += 1
                self._since_save += 1
                self._queue.push(answer)
                fresh.append(answer)
        return fresh

    def stream(self) -> Iterator[Answer]:
        """Run the coordinated enumeration; yield each answer once."""
        queue = self._queue
        inflight = self._inflight
        mode = self._mode
        # Restore (and its fingerprint/prefix validation) already
        # happened at construction, so a failed resume can never
        # overwrite a good checkpoint with partially restored state
        # from the finally clause below.
        node_iterator = self._node_iterator
        try:
            if not self._resumed:
                seed = self._seed()
                self._seen.add(seed)
                self._stats.answers += 1
                queue.push(seed)
                if mode == "UG":
                    self._yielded.add(seed)
                    yield seed
            elif mode == "UG":
                # Under UG an answer is yielded the moment it is first
                # generated — so any restored answer the interrupted run
                # generated but never delivered must be emitted now, or
                # it would never be yielded at all.
                for answer in queue.items() + sorted(
                    self._dispatched, key=sorted
                ):
                    if answer not in self._yielded:
                        self._yielded.add(answer)
                        yield answer
            while True:
                # Dispatch popped answers against the current V snapshot.
                while len(queue) and len(inflight) < self._max_inflight():
                    count = min(self._pop_chunk_size(len(queue)), len(queue))
                    batch = self._popping
                    for __ in range(count):
                        batch.append(queue.pop())
                    for answer in batch:
                        if mode == "UP" and answer not in self._yielded:
                            self._yielded.add(answer)
                            yield answer
                    known = tuple(self._known)
                    jobs = [(tuple(sorted(a)), known) for a in batch]
                    future = self._runner.submit((self._region_mask, jobs))
                    # Only now is the batch safely in flight: answers
                    # move from "still queued" to "dispatched" together,
                    # so an interrupt mid-batch can never record an
                    # unprocessed answer as processed.
                    self._dispatched.update(batch)
                    inflight[future] = ("pop", tuple(batch))
                    self._popping = []

                if inflight:
                    done, __ = wait(inflight, return_when=FIRST_COMPLETED)
                    for future in done:
                        kind, __answers = inflight.pop(future)
                        for answer in self._absorb(future.result()):
                            if mode == "UG":
                                self._yielded.add(answer)
                                yield answer
                        if kind == "barrier" and not any(
                            k == "barrier" for k, _ in inflight.values()
                        ):
                            self._barrier_node = None
                    self._maybe_checkpoint()
                    continue

                if len(queue):
                    continue

                # Q empty, nothing in flight: grow V by one node.
                if self._exhausted:
                    break
                try:
                    v = next(node_iterator)
                except StopIteration:
                    self._exhausted = True
                    break
                self._known.append(v)
                self._stats.nodes_generated += 1
                if not self._dispatched:
                    continue
                self._barrier_node = v
                targets = sorted(self._dispatched, key=sorted)
                for chunk in self._barrier_chunks(targets):
                    jobs = [(tuple(sorted(a)), (v,)) for a in chunk]
                    future = self._runner.submit((self._region_mask, jobs))
                    inflight[future] = ("barrier", tuple(chunk))
        finally:
            if self._checkpoint is not None:
                self._save_checkpoint()
