"""The sharded EnumMIS coordinator (answer-queue partitioning).

This is the paper's Figure 1 control loop with the expensive inner
steps — the ``direction`` edge-oracle sweep and the ``Extend``
triangulation — farmed out to a task runner, while the cheap,
order-sensitive bookkeeping stays in one place:

* the coordinator owns Q (produced, unprocessed answers), P (processed
  answers), V (SGR nodes generated so far) and the deduplication set;
* popped answers are batched into tasks ``(J, V-snapshot)`` and
  dispatched; results are absorbed as they complete, so item A can be
  extending on one worker while item B's extensions are being deduped;
* when Q runs dry and nothing is in flight, the next SGR node v is
  pulled from the (serial, polynomial-delay) node iterator and every
  answer of P is re-examined in the direction of v — sharded across
  the pool in chunks, as a barrier.

Correctness is order-agnostic exactly as in the serial algorithm: an
answer popped and dispatched against the *snapshot* of V is re-examined
later against any nodes discovered afterwards, because it sits in P
when those nodes arrive.  At termination (Q empty, nothing in flight,
iterator exhausted) every answer of P has been processed in the
direction of every node of V = all SGR nodes — the same invariant the
serial proof closes with, so the produced set is exactly
``MaxInd(G(x))`` with no duplicates (deduplication is centralised in
the coordinator).

Checkpointing piggybacks on the same state: outside a barrier, (Q ∪
in-flight answers, P minus in-flight, V) is always a consistent resume
point; during a barrier on node v, the snapshot simply excludes v from
V (v is re-pulled and the barrier re-run on resume — duplicate work,
never wrong answers).  The coordinator does not own the checkpoint
file: it reports its control snapshot to a *sink* (one file may hold
many region sections — see :mod:`repro.engine.checkpoint`) and is
handed a pre-validated :class:`~repro.engine.checkpoint.CheckpointState`
to resume from.

Task sizing is delegated to an
:class:`~repro.engine.batching.AdaptiveBatcher` (shared across the
regions of one job): every completed batch reports its pair count,
worker compute time and round-trip, and the next batch is sized to the
job's target duration from the observed per-pair cost.  The same
measurements are folded into the run statistics (``ipc_time_ns``,
``ipc_payload_bytes``, ``batches_dispatched``), so the report and the
policy can never disagree about what was observed.  Batches travel in
the packed wire format of :mod:`repro.engine.wire` whenever the runner
advertises it.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Callable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import NamedTuple

from repro.chordal.minimal_separators import minimal_separator_masks
from repro.chordal.triangulate import Triangulator
from repro.core.extend import extend_parallel_set
from repro.engine.batching import AdaptiveBatcher
from repro.engine.checkpoint import CheckpointError, CheckpointState
from repro.engine.pool import InlineRunner, PoolRunner
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics, _AnswerQueue

try:  # numpy unavailable: the legacy tuple wire format only
    from repro.engine import wire as _wire
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _wire = None

__all__ = ["MISCoordinator"]

Answer = frozenset[int]


class _Inflight(NamedTuple):
    """Bookkeeping for one dispatched batch."""

    kind: str  # "pop" | "barrier"
    answers: tuple[Answer, ...]
    submitted_ns: int
    sent_bytes: int
    pairs: int


class MISCoordinator:
    """Sharded EnumMIS over one connected region of the input graph.

    Yields answers as frozensets of separator *masks*; the backend
    layer materialises them into Triangulation objects.

    ``checkpoint`` is a sink object exposing ``every`` (save cadence in
    newly generated answers) and ``save()`` (persist the document this
    coordinator's section belongs to); ``restore_state`` is this
    region's section of a loaded checkpoint.  Restoration — including
    the fast-forward of the deterministic separator iterator and its
    prefix validation — happens eagerly at construction, so a sink may
    snapshot any coordinator of a job the moment all of them exist.
    """

    def __init__(
        self,
        region: Graph,
        region_mask: int,
        runner: "InlineRunner | PoolRunner",
        *,
        mode: str = "UG",
        triangulator: str | Triangulator = "mcs_m",
        priority: Callable[[Answer], object] | None = None,
        stats: EnumMISStatistics | None = None,
        checkpoint=None,
        restore_state: CheckpointState | None = None,
        region_fingerprint: str = "",
        batcher: AdaptiveBatcher | None = None,
    ) -> None:
        self._region = region
        self._region_mask = region_mask
        self._runner = runner
        self._mode = mode
        self._triangulator = triangulator
        self._priority = priority
        self._stats = stats if stats is not None else EnumMISStatistics()
        self._checkpoint = checkpoint
        self._region_fingerprint = region_fingerprint
        self._batcher = (
            batcher
            if batcher is not None
            else AdaptiveBatcher(getattr(runner, "workers", 1))
        )
        self._packed_wire = (
            _wire is not None
            and getattr(runner, "wire_format", "plain") == "packed"
        )
        if self._packed_wire:
            from repro.graph.bitset_np import word_count

            self._words = word_count(len(region.core.adj))

        self._queue = _AnswerQueue(priority)
        self._seen: set[Answer] = set()
        self._dispatched: set[Answer] = set()
        self._yielded: set[Answer] = set()
        self._known: list[int] = []
        self._exhausted = False
        # future → the batch's dispatch bookkeeping
        self._inflight: dict[Future, _Inflight] = {}
        # Popped from Q but not yet handed to the runner — still "queued"
        # as far as a checkpoint is concerned.
        self._popping: list[Answer] = []
        self._barrier_node: int | None = None
        self._since_save = 0
        self._resumed = restore_state is not None
        if restore_state is not None:
            self._node_iterator = self._restore(restore_state)
        else:
            self._node_iterator = minimal_separator_masks(region)

    # ------------------------------------------------------------------
    # Dispatch and collection (sizing policy lives in the batcher)
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        kind: str,
        answers: list[Answer],
        directions: tuple[int, ...],
    ) -> None:
        """Encode and submit one batch; register it as in flight."""
        answer_masks = [tuple(sorted(answer)) for answer in answers]
        if self._packed_wire:
            batch = _wire.encode_batch(
                self._region_mask, answer_masks, directions, self._words
            )
            sent = batch.nbytes
        else:
            batch = (
                self._region_mask,
                [(masks, directions) for masks in answer_masks],
            )
            sent = 0
        # Stamp *before* submitting: the inline runner executes the
        # whole batch synchronously inside submit(), and its compute
        # must land in the round-trip or the cost model sees zeros.
        submitted = self._batcher.now()
        future = self._runner.submit(batch)
        self._inflight[future] = _Inflight(
            kind=kind,
            answers=tuple(answers),
            submitted_ns=submitted,
            sent_bytes=sent,
            pairs=len(answers) * len(directions),
        )

    def _collect(
        self, future: Future, entry: _Inflight, collected_ns: int
    ) -> list[Answer]:
        """Decode one completed batch, meter it, absorb its answers.

        May raise (a broken pool surfaces through ``future.result()``);
        the caller keeps ``entry`` registered in ``_inflight`` until
        this returns, so a crash-time checkpoint still sees the batch
        as in flight and requeues its answers instead of recording
        them — result lost — as processed.
        """
        result = future.result()
        if _wire is not None and isinstance(result, _wire.PackedResult):
            candidates = _wire.decode_result(result)
            delta = result.stats
            compute_ns = result.compute_ns
            received = result.nbytes
        else:
            # Legacy tuple format: the worker times its batch too, so
            # a numpy-less *pool* runner still meters real IPC (only
            # the payload-byte columns stay 0 — nothing packed to
            # count).  For the inline runner compute ≈ round-trip and
            # the IPC term is a few timer ticks.
            candidates, delta, compute_ns = result
            received = 0
        # ``collected_ns`` is stamped once per wait() wake-up, before
        # any answer of the round is yielded — round-trips must not
        # absorb time the generator spends suspended in the consumer.
        roundtrip = max(0, collected_ns - entry.submitted_ns)
        compute_ns = min(compute_ns, roundtrip)
        stats = self._stats
        stats.ipc_time_ns += max(0, roundtrip - compute_ns)
        stats.ipc_payload_bytes += entry.sent_bytes + received
        stats.batches_dispatched += 1
        stats.batch_roundtrip_ns += roundtrip
        self._batcher.observe(entry.pairs, compute_ns)
        return self._absorb(candidates, delta)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def barrier_active(self) -> bool:
        """Whether a barrier node is mid-flight (its pull is re-counted
        on resume, so document-level stats subtract one generated node
        per active barrier)."""
        return self._barrier_node is not None

    def control_snapshot(self) -> CheckpointState:
        """This region's (Q, P, V, yielded) as a checkpoint section."""
        # Answers whose (J, V-snapshot) processing has not completed go
        # back to Q: in-flight task results would be lost, and a batch
        # interrupted mid-pop was never submitted at all.
        requeue: set[Answer] = set(self._popping)
        for entry in self._inflight.values():
            if entry.kind == "pop":
                requeue.update(entry.answers)
        known = list(self._known)
        if self._barrier_node is not None:
            known.remove(self._barrier_node)
        return CheckpointState(
            region=self._region_fingerprint,
            known_nodes=known,
            exhausted=self._exhausted and self._barrier_node is None,
            queue=self._queue.items() + sorted(requeue, key=sorted),
            processed=sorted(self._dispatched - requeue, key=sorted),
            yielded=sorted(self._yielded, key=sorted),
        )

    def _save_checkpoint(self) -> None:
        if self._checkpoint is not None:
            self._checkpoint.save()
            self._since_save = 0

    def _maybe_checkpoint(self) -> None:
        if (
            self._checkpoint is not None
            and self._since_save >= self._checkpoint.every
        ):
            self._save_checkpoint()

    def _restore(self, state: CheckpointState) -> Iterator[int]:
        """Load (Q, P, V) and return the node iterator, fast-forwarded.

        Statistics are *not* restored here: they are shared by every
        region of a job and restored once, at the document level.
        """
        node_iterator = minimal_separator_masks(self._region)
        prefix = list(itertools.islice(node_iterator, len(state.known_nodes)))
        if prefix != state.known_nodes:
            raise CheckpointError(
                "separator enumeration prefix does not match the "
                "checkpoint; the graph differs from the checkpointed run"
            )
        self._known = list(state.known_nodes)
        self._exhausted = state.exhausted
        self._dispatched = set(state.processed)
        self._yielded = set(state.yielded)
        self._seen = set(state.processed)
        for answer in state.queue:
            if answer not in self._seen:
                self._seen.add(answer)
                self._queue.push(answer)
        return node_iterator

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def _seed(self) -> Answer:
        """Compute Extend(∅) locally — the first answer of the run."""
        self._stats.extend_calls += 1
        started = time.perf_counter_ns()
        family = extend_parallel_set(
            self._region, (), self._triangulator
        )
        self._stats.extend_time_ns += time.perf_counter_ns() - started
        return frozenset(self._region.mask_of(sep) for sep in family)

    def _absorb(self, candidates, delta) -> list[Answer]:
        """Fold a batch result into (stats, seen, Q); return new answers."""
        self._stats.add(delta)
        fresh: list[Answer] = []
        for masks in candidates:
            answer = frozenset(masks)
            if answer in self._seen:
                self._stats.duplicates_suppressed += 1
            else:
                self._seen.add(answer)
                self._stats.answers += 1
                self._since_save += 1
                self._queue.push(answer)
                fresh.append(answer)
        return fresh

    def stream(self) -> Iterator[Answer]:
        """Run the coordinated enumeration; yield each answer once."""
        queue = self._queue
        inflight = self._inflight
        mode = self._mode
        # Restore (and its fingerprint/prefix validation) already
        # happened at construction, so a failed resume can never
        # overwrite a good checkpoint with partially restored state
        # from the finally clause below.
        node_iterator = self._node_iterator
        try:
            if not self._resumed:
                seed = self._seed()
                self._seen.add(seed)
                self._stats.answers += 1
                queue.push(seed)
                if mode == "UG":
                    self._yielded.add(seed)
                    yield seed
            elif mode == "UG":
                # Under UG an answer is yielded the moment it is first
                # generated — so any restored answer the interrupted run
                # generated but never delivered must be emitted now, or
                # it would never be yielded at all.
                for answer in queue.items() + sorted(
                    self._dispatched, key=sorted
                ):
                    if answer not in self._yielded:
                        self._yielded.add(answer)
                        yield answer
            batcher = self._batcher
            while True:
                # Dispatch popped answers against the current V snapshot.
                while len(queue) and len(inflight) < batcher.max_inflight():
                    count = min(
                        batcher.pop_chunk_size(
                            len(queue), len(self._known)
                        ),
                        len(queue),
                    )
                    batch = self._popping
                    for __ in range(count):
                        batch.append(queue.pop())
                    for answer in batch:
                        if mode == "UP" and answer not in self._yielded:
                            self._yielded.add(answer)
                            yield answer
                    self._dispatch("pop", batch, tuple(self._known))
                    # Only now is the batch safely in flight: answers
                    # move from "still queued" to "dispatched" together,
                    # so an interrupt mid-batch can never record an
                    # unprocessed answer as processed.
                    self._dispatched.update(batch)
                    self._popping = []

                if inflight:
                    done, __ = wait(inflight, return_when=FIRST_COMPLETED)
                    collected_ns = batcher.now()
                    for future in done:
                        entry = inflight[future]
                        # _collect may raise (broken pool); the entry
                        # leaves _inflight only after its answers are
                        # absorbed, so the crash-path checkpoint in the
                        # finally clause below requeues the batch.
                        fresh = self._collect(future, entry, collected_ns)
                        del inflight[future]
                        for answer in fresh:
                            if mode == "UG":
                                self._yielded.add(answer)
                                yield answer
                        if entry.kind == "barrier" and not any(
                            e.kind == "barrier" for e in inflight.values()
                        ):
                            self._barrier_node = None
                    self._maybe_checkpoint()
                    continue

                if len(queue):
                    continue

                # Q empty, nothing in flight: grow V by one node.
                if self._exhausted:
                    break
                try:
                    v = next(node_iterator)
                except StopIteration:
                    self._exhausted = True
                    break
                self._known.append(v)
                self._stats.nodes_generated += 1
                if not self._dispatched:
                    continue
                self._barrier_node = v
                targets = sorted(self._dispatched, key=sorted)
                size = batcher.barrier_chunk_size(len(targets))
                for start in range(0, len(targets), size):
                    self._dispatch(
                        "barrier", targets[start : start + size], (v,)
                    )
        finally:
            if self._checkpoint is not None:
                self._save_checkpoint()
