"""The sharded EnumMIS coordinator (answer-queue partitioning).

This is the paper's Figure 1 control loop with the expensive inner
steps — the ``direction`` edge-oracle sweep and the ``Extend``
triangulation — farmed out to a task runner, while the cheap,
order-sensitive bookkeeping stays in one place:

* the coordinator owns Q (produced, unprocessed answers), P (processed
  answers), V (SGR nodes generated so far) and the deduplication set;
* popped answers are batched into tasks ``(J, V-snapshot)`` and
  dispatched; results are absorbed as they complete, so item A can be
  extending on one worker while item B's extensions are being deduped;
* when Q runs dry and nothing is in flight, the next SGR node v is
  pulled from the (serial, polynomial-delay) node iterator and every
  answer of P is re-examined in the direction of v — sharded across
  the pool in chunks, as a barrier.

Correctness is order-agnostic exactly as in the serial algorithm: an
answer popped and dispatched against the *snapshot* of V is re-examined
later against any nodes discovered afterwards, because it sits in P
when those nodes arrive.  At termination (Q empty, nothing in flight,
iterator exhausted) every answer of P has been processed in the
direction of every node of V = all SGR nodes — the same invariant the
serial proof closes with, so the produced set is exactly
``MaxInd(G(x))`` with no duplicates (deduplication is centralised in
the coordinator).

Checkpointing piggybacks on the same state: outside a barrier, (Q ∪
in-flight answers, P minus in-flight, V) is always a consistent resume
point; during a barrier on node v, the snapshot simply excludes v from
V (v is re-pulled and the barrier re-run on resume — duplicate work,
never wrong answers).  The coordinator does not own the checkpoint
file: it reports its control snapshot to a *sink* (one file may hold
many region sections — see :mod:`repro.engine.checkpoint`) and is
handed a pre-validated :class:`~repro.engine.checkpoint.CheckpointState`
to resume from.

Task sizing is delegated to an
:class:`~repro.engine.batching.AdaptiveBatcher` (shared across the
regions of one job): every completed batch reports its pair count,
worker compute time and round-trip, and the next batch is sized to the
job's target duration from the observed per-pair cost.  The same
measurements are folded into the run statistics (``ipc_time_ns``,
``ipc_payload_bytes``, ``batches_dispatched``), so the report and the
policy can never disagree about what was observed.  Batches travel in
the packed wire format of :mod:`repro.engine.wire` whenever the runner
advertises it.
"""

from __future__ import annotations

import itertools
import time
import warnings
from collections.abc import Callable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import NamedTuple

from repro.chordal.minimal_separators import minimal_separator_masks
from repro.chordal.triangulate import Triangulator
from repro.core.extend import extend_parallel_set
from repro.engine.base import BatchFailedError, EngineError
from repro.engine.batching import AdaptiveBatcher
from repro.engine.checkpoint import CheckpointError, CheckpointState
from repro.engine.pool import (
    WorkerState,
    make_payload,
)
from repro.engine.watchdog import (
    BatchAbortedError,
    BatchFailure,
    BatchLimits,
)
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics, _AnswerQueue

try:  # numpy unavailable: the legacy tuple wire format only
    from repro.engine import wire as _wire
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _wire = None

__all__ = ["MISCoordinator"]

Answer = frozenset[int]


class _Inflight(NamedTuple):
    """Bookkeeping for one dispatched batch."""

    kind: str  # "pop" | "barrier"
    answers: tuple[Answer, ...]
    submitted_ns: int
    sent_bytes: int
    pairs: int
    #: The direction masks the batch was dispatched against — needed
    #: to rebuild the exact same work on a retry, split or salvage.
    directions: tuple[int, ...]
    #: Coordinator-level redispatch count for this batch's lineage.
    retries: int
    #: True once the batch is a half of a split batch: it may be
    #: retried but never split again (the split happens exactly once).
    from_split: bool


class MISCoordinator:
    """Sharded EnumMIS over one connected region of the input graph.

    Yields answers as frozensets of separator *masks*; the backend
    layer materialises them into Triangulation objects.

    ``checkpoint`` is a sink object exposing ``every`` (save cadence in
    newly generated answers) and ``save()`` (persist the document this
    coordinator's section belongs to); ``restore_state`` is this
    region's section of a loaded checkpoint.  Restoration — including
    the fast-forward of the deterministic separator iterator and its
    prefix validation — happens eagerly at construction, so a sink may
    snapshot any coordinator of a job the moment all of them exist.
    """

    def __init__(
        self,
        region: Graph,
        region_mask: int,
        runner: "InlineRunner | PoolRunner",
        *,
        mode: str = "UG",
        triangulator: str | Triangulator = "mcs_m",
        priority: Callable[[Answer], object] | None = None,
        stats: EnumMISStatistics | None = None,
        checkpoint=None,
        restore_state: CheckpointState | None = None,
        region_fingerprint: str = "",
        batcher: AdaptiveBatcher | None = None,
        max_batch_retries: int = 3,
        quarantine_budget_s: float = 60.0,
    ) -> None:
        if max_batch_retries < 0:
            raise EngineError("max_batch_retries must be >= 0")
        if quarantine_budget_s <= 0:
            raise EngineError("quarantine_budget_s must be positive")
        self._region = region
        self._region_mask = region_mask
        self._runner = runner
        self._mode = mode
        self._triangulator = triangulator
        self._priority = priority
        self._stats = stats if stats is not None else EnumMISStatistics()
        self._checkpoint = checkpoint
        self._max_batch_retries = max_batch_retries
        self._quarantine_budget_s = quarantine_budget_s
        # Lazily-built serial fallback for quarantined batches.  Never
        # shares state with the runner's workers (and never has fault
        # injection applied), which is what makes salvage converge.
        self._salvage_state: WorkerState | None = None
        self._region_fingerprint = region_fingerprint
        self._batcher = (
            batcher
            if batcher is not None
            else AdaptiveBatcher(getattr(runner, "workers", 1))
        )
        self._packed_wire = (
            _wire is not None
            and getattr(runner, "wire_format", "plain") == "packed"
        )
        if self._packed_wire:
            from repro.graph.bitset_np import word_count

            self._words = word_count(len(region.core.adj))

        self._queue = _AnswerQueue(priority)
        self._seen: set[Answer] = set()
        self._dispatched: set[Answer] = set()
        self._yielded: set[Answer] = set()
        self._known: list[int] = []
        self._exhausted = False
        # future → the batch's dispatch bookkeeping
        self._inflight: dict[Future, _Inflight] = {}
        # Popped from Q but not yet handed to the runner — still "queued"
        # as far as a checkpoint is concerned.
        self._popping: list[Answer] = []
        self._barrier_node: int | None = None
        self._since_save = 0
        self._resumed = restore_state is not None
        if restore_state is not None:
            self._node_iterator = self._restore(restore_state)
        else:
            self._node_iterator = minimal_separator_masks(region)

    # ------------------------------------------------------------------
    # Dispatch and collection (sizing policy lives in the batcher)
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        kind: str,
        answers: list[Answer],
        directions: tuple[int, ...],
        *,
        retries: int = 0,
        from_split: bool = False,
    ) -> None:
        """Encode and submit one batch; register it as in flight."""
        answer_masks = [tuple(sorted(answer)) for answer in answers]
        if self._packed_wire:
            batch = _wire.encode_batch(
                self._region_mask, answer_masks, directions, self._words
            )
            sent = batch.nbytes
        else:
            batch = (
                self._region_mask,
                [(masks, directions) for masks in answer_masks],
            )
            sent = 0
        # Stamp *before* submitting: the inline runner executes the
        # whole batch synchronously inside submit(), and its compute
        # must land in the round-trip or the cost model sees zeros.
        submitted = self._batcher.now()
        try:
            future = self._runner.submit(batch)
        except BrokenProcessPool:
            # A worker died between our last collect and this submit;
            # recover the pool and resubmit.  The dead worker's own
            # batches fail through their futures and take the
            # retry/split/quarantine ladder as usual.
            restart = getattr(self._runner, "restart", None)
            if restart is None:  # pragma: no cover - no recovery path
                raise
            restart()
            future = self._runner.submit(batch)
        self._inflight[future] = _Inflight(
            kind=kind,
            answers=tuple(answers),
            submitted_ns=submitted,
            sent_bytes=sent,
            pairs=len(answers) * len(directions),
            directions=tuple(directions),
            retries=retries,
            from_split=from_split,
        )

    def _collect(
        self, future: Future, entry: _Inflight, collected_ns: int
    ) -> list[Answer]:
        """Decode one completed batch, meter it, absorb its answers.

        May raise (an unsalvageable failure surfaces here); the caller
        keeps ``entry`` registered in ``_inflight`` until this returns,
        so a crash-time checkpoint still sees the batch as in flight
        and requeues its answers instead of recording them — result
        lost — as processed.

        Batch *failures* — a typed :class:`BatchFailedError` from the
        distributed transport, a :class:`BatchFailure` value from a
        pool worker's cooperative abort, or a hard worker death
        breaking the pool — do not raise: they are routed through the
        retry → split → quarantine ladder, which either redispatches
        the work (returning ``[]`` now) or salvages it serially and
        returns the recovered answers.
        """
        try:
            result = future.result()
        except BatchFailedError as exc:
            return self._handle_failure(
                entry, exc.reason, exhausted=exc.exhausted
            )
        except BrokenProcessPool:
            restart = getattr(self._runner, "restart", None)
            if restart is None:  # pragma: no cover - no recovery path
                raise
            restart()
            return self._handle_failure(
                entry, "worker process died", exhausted=False
            )
        if isinstance(result, BatchFailure):
            return self._handle_failure(
                entry, result.reason, exhausted=False
            )
        if _wire is not None and isinstance(result, _wire.PackedResult):
            candidates = _wire.decode_result(result)
            delta = result.stats
            compute_ns = result.compute_ns
            received = result.nbytes
        else:
            # Legacy tuple format: the worker times its batch too, so
            # a numpy-less *pool* runner still meters real IPC (only
            # the payload-byte columns stay 0 — nothing packed to
            # count).  For the inline runner compute ≈ round-trip and
            # the IPC term is a few timer ticks.
            candidates, delta, compute_ns = result
            received = 0
        # ``collected_ns`` is stamped once per wait() wake-up, before
        # any answer of the round is yielded — round-trips must not
        # absorb time the generator spends suspended in the consumer.
        roundtrip = max(0, collected_ns - entry.submitted_ns)
        compute_ns = min(compute_ns, roundtrip)
        stats = self._stats
        stats.ipc_time_ns += max(0, roundtrip - compute_ns)
        stats.ipc_payload_bytes += entry.sent_bytes + received
        stats.batches_dispatched += 1
        stats.batch_roundtrip_ns += roundtrip
        self._batcher.observe(entry.pairs, compute_ns)
        return self._absorb(candidates, delta)

    # ------------------------------------------------------------------
    # Poison-batch quarantine (retry → split → serial salvage)
    # ------------------------------------------------------------------

    def _handle_failure(
        self, entry: _Inflight, reason: str, *, exhausted: bool
    ) -> list[Answer]:
        """Route one failed batch through the quarantine ladder.

        1. *Retry* the batch as-is while its lineage has budget left —
           unless the transport already exhausted its own retry budget
           on it (``exhausted``), in which case resubmitting the same
           batch would just burn another full transport budget.
        2. *Split in half* once: a single poison answer condemns every
           batch it rides in, and halving isolates it so the healthy
           answers rejoin the normal path.
        3. *Quarantine*: re-drive the remaining (answer, direction)
           pairs serially in this process under a hard budget.

        Returns the answers recovered now (salvage) or ``[]`` when the
        work was redispatched.
        """
        stats = self._stats
        if not exhausted and entry.retries < self._max_batch_retries:
            stats.batch_retries += 1
            self._dispatch(
                entry.kind,
                list(entry.answers),
                entry.directions,
                retries=entry.retries + 1,
                from_split=entry.from_split,
            )
            return []
        if len(entry.answers) > 1 and not entry.from_split:
            stats.batch_retries += 1
            half = len(entry.answers) // 2
            for part in (entry.answers[:half], entry.answers[half:]):
                # The split is the last pre-quarantine attempt: halves
                # carry a spent retry budget, so a half that fails
                # again goes straight to salvage.
                self._dispatch(
                    entry.kind,
                    list(part),
                    entry.directions,
                    retries=self._max_batch_retries,
                    from_split=True,
                )
            return []
        return self._quarantine(entry, reason)

    def _quarantine(self, entry: _Inflight, reason: str) -> list[Answer]:
        """Serially re-drive a poison batch in the coordinator process.

        The salvage :class:`WorkerState` is built lazily from this
        region's own graph — it shares nothing with the runner's
        workers (no fault injection, no pool, no socket), so whatever
        killed the batch out there cannot recur here; what *can* recur
        is a genuinely unprocessable pair, which the hard deadline
        turns into a typed error instead of a hang.
        """
        stats = self._stats
        stats.batches_quarantined += 1
        stats.poison_answers += len(entry.answers)
        warnings.warn(
            f"quarantining a batch of {len(entry.answers)} answer(s) "
            f"after repeated failures (last: {reason}); re-driving it "
            "serially in the coordinator process",
            RuntimeWarning,
            stacklevel=2,
        )
        state = self._salvage_state
        if state is None:
            state = WorkerState(
                make_payload(self._region, self._triangulator),
                limits=BatchLimits(deadline_s=self._quarantine_budget_s),
            )
            self._salvage_state = state
        jobs = [
            (tuple(sorted(answer)), entry.directions)
            for answer in entry.answers
        ]
        try:
            out, delta, __ = state.run_batch((self._region_mask, jobs))
        except BatchAbortedError as exc:
            raise EngineError(
                "quarantined batch could not be salvaged within its "
                f"{self._quarantine_budget_s:.0f}s serial budget "
                f"({exc.reason}); an (answer, direction) pair of this "
                "input is genuinely unprocessable under the configured "
                "limits"
            ) from exc
        return self._absorb(out, delta)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def barrier_active(self) -> bool:
        """Whether a barrier node is mid-flight (its pull is re-counted
        on resume, so document-level stats subtract one generated node
        per active barrier)."""
        return self._barrier_node is not None

    def control_snapshot(self) -> CheckpointState:
        """This region's (Q, P, V, yielded) as a checkpoint section."""
        # Answers whose (J, V-snapshot) processing has not completed go
        # back to Q: in-flight task results would be lost, and a batch
        # interrupted mid-pop was never submitted at all.
        requeue: set[Answer] = set(self._popping)
        for entry in self._inflight.values():
            if entry.kind == "pop":
                requeue.update(entry.answers)
        known = list(self._known)
        if self._barrier_node is not None:
            known.remove(self._barrier_node)
        return CheckpointState(
            region=self._region_fingerprint,
            known_nodes=known,
            exhausted=self._exhausted and self._barrier_node is None,
            queue=self._queue.items() + sorted(requeue, key=sorted),
            processed=sorted(self._dispatched - requeue, key=sorted),
            yielded=sorted(self._yielded, key=sorted),
        )

    def _save_checkpoint(self) -> None:
        if self._checkpoint is not None:
            self._checkpoint.save()
            self._since_save = 0

    def _maybe_checkpoint(self) -> None:
        if (
            self._checkpoint is not None
            and self._since_save >= self._checkpoint.every
        ):
            self._save_checkpoint()

    def _restore(self, state: CheckpointState) -> Iterator[int]:
        """Load (Q, P, V) and return the node iterator, fast-forwarded.

        Statistics are *not* restored here: they are shared by every
        region of a job and restored once, at the document level.
        """
        node_iterator = minimal_separator_masks(self._region)
        prefix = list(itertools.islice(node_iterator, len(state.known_nodes)))
        if prefix != state.known_nodes:
            raise CheckpointError(
                "separator enumeration prefix does not match the "
                "checkpoint; the graph differs from the checkpointed run"
            )
        self._known = list(state.known_nodes)
        self._exhausted = state.exhausted
        self._dispatched = set(state.processed)
        self._yielded = set(state.yielded)
        self._seen = set(state.processed)
        for answer in state.queue:
            if answer not in self._seen:
                self._seen.add(answer)
                self._queue.push(answer)
        return node_iterator

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def _seed(self) -> Answer:
        """Compute Extend(∅) locally — the first answer of the run."""
        self._stats.extend_calls += 1
        started = time.perf_counter_ns()
        family = extend_parallel_set(
            self._region, (), self._triangulator
        )
        self._stats.extend_time_ns += time.perf_counter_ns() - started
        return frozenset(self._region.mask_of(sep) for sep in family)

    def _absorb(self, candidates, delta) -> list[Answer]:
        """Fold a batch result into (stats, seen, Q); return new answers."""
        self._stats.add(delta)
        fresh: list[Answer] = []
        for masks in candidates:
            answer = frozenset(masks)
            if answer in self._seen:
                self._stats.duplicates_suppressed += 1
            else:
                self._seen.add(answer)
                self._stats.answers += 1
                self._since_save += 1
                self._queue.push(answer)
                fresh.append(answer)
        return fresh

    def stream(self) -> Iterator[Answer]:
        """Run the coordinated enumeration; yield each answer once."""
        queue = self._queue
        inflight = self._inflight
        mode = self._mode
        # Restore (and its fingerprint/prefix validation) already
        # happened at construction, so a failed resume can never
        # overwrite a good checkpoint with partially restored state
        # from the finally clause below.
        node_iterator = self._node_iterator
        try:
            if not self._resumed:
                seed = self._seed()
                self._seen.add(seed)
                self._stats.answers += 1
                queue.push(seed)
                if mode == "UG":
                    self._yielded.add(seed)
                    yield seed
            elif mode == "UG":
                # Under UG an answer is yielded the moment it is first
                # generated — so any restored answer the interrupted run
                # generated but never delivered must be emitted now, or
                # it would never be yielded at all.
                for answer in queue.items() + sorted(
                    self._dispatched, key=sorted
                ):
                    if answer not in self._yielded:
                        self._yielded.add(answer)
                        yield answer
            batcher = self._batcher
            while True:
                # Dispatch popped answers against the current V snapshot.
                while len(queue) and len(inflight) < batcher.max_inflight():
                    count = min(
                        batcher.pop_chunk_size(
                            len(queue), len(self._known)
                        ),
                        len(queue),
                    )
                    batch = self._popping
                    for __ in range(count):
                        batch.append(queue.pop())
                    for answer in batch:
                        if mode == "UP" and answer not in self._yielded:
                            self._yielded.add(answer)
                            yield answer
                    self._dispatch("pop", batch, tuple(self._known))
                    # Only now is the batch safely in flight: answers
                    # move from "still queued" to "dispatched" together,
                    # so an interrupt mid-batch can never record an
                    # unprocessed answer as processed.
                    self._dispatched.update(batch)
                    self._popping = []

                if inflight:
                    done, __ = wait(inflight, return_when=FIRST_COMPLETED)
                    collected_ns = batcher.now()
                    for future in done:
                        entry = inflight[future]
                        # _collect may raise (broken pool); the entry
                        # leaves _inflight only after its answers are
                        # absorbed, so the crash-path checkpoint in the
                        # finally clause below requeues the batch.
                        fresh = self._collect(future, entry, collected_ns)
                        del inflight[future]
                        for answer in fresh:
                            if mode == "UG":
                                self._yielded.add(answer)
                                yield answer
                        if entry.kind == "barrier" and not any(
                            e.kind == "barrier" for e in inflight.values()
                        ):
                            self._barrier_node = None
                    self._maybe_checkpoint()
                    continue

                if len(queue):
                    continue

                # Q empty, nothing in flight: grow V by one node.
                if self._exhausted:
                    break
                try:
                    v = next(node_iterator)
                except StopIteration:
                    self._exhausted = True
                    break
                self._known.append(v)
                self._stats.nodes_generated += 1
                if not self._dispatched:
                    continue
                self._barrier_node = v
                targets = sorted(self._dispatched, key=sorted)
                size = batcher.barrier_chunk_size(len(targets))
                for start in range(0, len(targets), size):
                    self._dispatch(
                        "barrier", targets[start : start + size], (v,)
                    )
        finally:
            if self._checkpoint is not None:
                self._save_checkpoint()
