"""Checkpoint/resume of the EnumMIS (Q, P, V) state.

The EnumMIS control state is small and fully describes the traversal:

* ``V`` — the SGR nodes (minimal separators) generated so far, each a
  vertex bitmask;
* ``P`` — processed answers, each a set of separator masks;
* ``Q`` — produced-but-unprocessed answers.

Everything else (the separator-intern table, crossing caches) is a pure
cache rebuilt on demand, so persisting those three collections — plus
the set of answers already yielded, the statistics counters and an
input fingerprint — lets a multi-hour enumeration survive interruption
and continue exactly where it stopped, without re-yielding answers the
consumer already saw.

Masks serialise as plain JSON integers (Python's ``json`` handles
arbitrary-precision ints), so the format is portable across runs and
machines as long as the graph — and therefore the label → index
interning, which is deterministic given the same construction — is the
same.  A fingerprint over the node/edge sets, the mode and the
triangulator guards against resuming into a different job.

Resume replays the deterministic minimal-separator enumerator through
the first ``|V|`` outputs and verifies they match the stored prefix, so
the node iterator continues from the right position.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.base import EngineError
from repro.graph.graph import Graph

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "CheckpointState",
    "job_fingerprint",
]

_FORMAT_VERSION = 1

Answer = frozenset[int]


class CheckpointError(EngineError):
    """A checkpoint file is unreadable or belongs to a different job."""


def job_fingerprint(
    graph: Graph, mode: str, triangulator_name: str, decompose: str
) -> str:
    """A stable digest identifying the job a checkpoint belongs to."""
    digest = hashlib.sha256()
    for node in graph.nodes():
        digest.update(repr(node).encode())
        digest.update(b"\x00")
    digest.update(b"\x01")
    for u, v in graph.edges():
        digest.update(repr(u).encode())
        digest.update(b"\x00")
        digest.update(repr(v).encode())
        digest.update(b"\x00")
    digest.update(f"|{mode}|{triangulator_name}|{decompose}".encode())
    return digest.hexdigest()


@dataclass
class CheckpointState:
    """The persisted EnumMIS control state."""

    known_nodes: list[int] = field(default_factory=list)
    exhausted: bool = False
    queue: list[Answer] = field(default_factory=list)
    processed: list[Answer] = field(default_factory=list)
    yielded: list[Answer] = field(default_factory=list)
    # Scalar counters plus the map-valued ``redundant_extensions``.
    stats: dict = field(default_factory=dict)


def _encode_answers(answers: list[Answer]) -> list[list[int]]:
    return [sorted(answer) for answer in answers]


def _decode_answers(raw: list[list[int]]) -> list[Answer]:
    return [frozenset(masks) for masks in raw]


def _decode_stats(raw: dict) -> dict:
    """Normalise persisted statistics counters.

    Scalar counters decode as ints; map-valued counters (the
    ``redundant_extensions`` breakdown) decode as ``{str: int}``.
    Checkpoints from before a counter existed simply lack its key —
    :meth:`~repro.sgr.enum_mis.EnumMISStatistics.restore` tolerates
    that — and unknown keys ride through harmlessly.
    """
    decoded: dict = {}
    for key, value in raw.items():
        if isinstance(value, dict):
            decoded[key] = {str(k): int(v) for k, v in value.items()}
        else:
            decoded[key] = int(value)
    return decoded


class CheckpointManager:
    """Owns one checkpoint file: atomic saves, fingerprint-checked loads."""

    def __init__(
        self, path: str | Path, fingerprint: str, every: int = 64
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.every = every

    def load(self) -> CheckpointState:
        """Read and validate the checkpoint; raises on any mismatch."""
        try:
            data = json.loads(self.path.read_text())
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is not valid JSON: {exc}"
            ) from exc
        if data.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has unsupported version "
                f"{data.get('version')!r} (expected {_FORMAT_VERSION})"
            )
        if data.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different job "
                "(graph, mode, triangulator or decompose changed)"
            )
        return CheckpointState(
            known_nodes=[int(mask) for mask in data["known_nodes"]],
            exhausted=bool(data["exhausted"]),
            queue=_decode_answers(data["queue"]),
            processed=_decode_answers(data["processed"]),
            yielded=_decode_answers(data["yielded"]),
            stats=_decode_stats(data.get("stats", {})),
        )

    def load_if_resuming(self, resume: bool) -> CheckpointState | None:
        """Load the state when ``resume`` is set; ``None`` on fresh runs.

        A resume against a missing file is an error, not a silent fresh
        start: the caller asked to continue a previous run, and quietly
        re-enumerating from scratch would re-deliver every answer the
        interrupted run already yielded (and burn its runtime again).
        """
        if not resume:
            return None
        if not self.path.exists():
            raise CheckpointError(
                f"cannot resume: checkpoint {self.path} does not exist"
            )
        return self.load()

    def save(self, state: CheckpointState) -> None:
        """Atomically persist ``state`` (write temp file, then rename)."""
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "known_nodes": list(state.known_nodes),
            "exhausted": state.exhausted,
            "queue": _encode_answers(state.queue),
            "processed": _encode_answers(state.processed),
            "yielded": _encode_answers(state.yielded),
            "stats": state.stats,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)
