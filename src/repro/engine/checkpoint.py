"""Checkpoint/resume of the EnumMIS (Q, P, V) state — per region.

The EnumMIS control state is small and fully describes the traversal
of one *region* (connected component or atom):

* ``V`` — the SGR nodes (minimal separators) generated so far, each a
  vertex bitmask;
* ``P`` — processed answers, each a set of separator masks;
* ``Q`` — produced-but-unprocessed answers.

Everything else (the separator-intern table, crossing caches) is a pure
cache rebuilt on demand, so persisting those three collections — plus
the set of answers already yielded, the statistics counters and an
input fingerprint — lets a multi-hour enumeration survive interruption
and continue exactly where it stopped, without re-yielding answers the
consumer already saw.

A checkpoint file is a :class:`CheckpointDocument`: one
:class:`CheckpointState` *section per region*, identified by a region
fingerprint, plus the state of the cross-region product for jobs whose
graph decomposes into several regions (disconnected inputs,
``decompose="atoms"``):

* ``arrivals`` — the order in which region answers entered the lazy
  fair product (region index per arrival; each section's ``yielded``
  list holds that region's answers in the same arrival order), and
* ``delivered`` — how many product combinations the consumer has
  received.

Replaying ``arrivals`` against the per-region ``yielded`` lists
deterministically reconstructs the exact combination sequence of the
interrupted run, so resume skips the first ``delivered`` combinations
and re-emits only what the consumer never saw.  Statistics are stored
once at the document level (every region folds into one shared
:class:`~repro.sgr.enum_mis.EnumMISStatistics`); that includes the
stage timers and wire accounting (``extend_time_ns``,
``crossing_time_ns``, ``ipc_time_ns``, ``ipc_payload_bytes``,
``batches_dispatched``, ``batch_roundtrip_ns``) — all plain integer
counters, so a resumed run's report covers the whole enumeration, not
just the post-resume half, and files from before a counter existed
keep loading (missing keys leave the fresh value untouched).

Masks serialise as plain JSON integers (Python's ``json`` handles
arbitrary-precision ints), so the format is portable across runs and
machines as long as the graph — and therefore the label → index
interning, which is deterministic given the same construction — is the
same.  A fingerprint over the node/edge sets, the mode and the
triangulator guards against resuming into a different job; version-1
files (single-region, pre-multi-region format) load as one-section
documents.

Resume replays the deterministic minimal-separator enumerator through
the first ``|V|`` outputs of every region and verifies they match the
stored prefix, so each node iterator continues from the right position.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.base import EngineError
from repro.graph.graph import Graph

__all__ = [
    "CheckpointError",
    "CheckpointIntegrityError",
    "CheckpointManager",
    "CheckpointState",
    "CheckpointDocument",
    "job_fingerprint",
    "region_fingerprint",
]

#: Version 3 added the document CRC-32 and two-generation rotation
#: (``ckpt`` → ``ckpt.1`` on every save).  Version-1/2 files load
#: unchanged — they simply carry no CRC to verify.
_FORMAT_VERSION = 3

Answer = frozenset[int]


class CheckpointError(EngineError):
    """A checkpoint file is unreadable or belongs to a different job."""


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint file is damaged (truncated, corrupt, unreadable).

    Integrity failures are the *recoverable* kind: the data on disk is
    not what was written, so falling back to the previous generation
    is safe and right.  Semantic mismatches (wrong job fingerprint,
    unsupported version) stay plain :class:`CheckpointError` — those
    mean the *caller* is wrong, and silently resuming an older file of
    the same wrong job would compound the mistake.
    """


def _document_crc(payload: dict) -> int:
    """CRC-32 over the canonical JSON encoding of ``payload``.

    The payload must not contain the ``crc32`` key itself; canonical
    form (sorted keys, no whitespace) makes the digest independent of
    dict ordering and formatting, so load can recompute it from the
    parsed document.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(body.encode())


def job_fingerprint(
    graph: Graph, mode: str, triangulator_name: str, decompose: str
) -> str:
    """A stable digest identifying the job a checkpoint belongs to."""
    digest = hashlib.sha256()
    for node in graph.nodes():
        digest.update(repr(node).encode())
        digest.update(b"\x00")
    digest.update(b"\x01")
    for u, v in graph.edges():
        digest.update(repr(u).encode())
        digest.update(b"\x00")
        digest.update(repr(v).encode())
        digest.update(b"\x00")
    digest.update(f"|{mode}|{triangulator_name}|{decompose}".encode())
    return digest.hexdigest()


def region_fingerprint(region: Graph) -> str:
    """A stable digest of one region's node set.

    The job fingerprint already pins the whole graph (and the edge set
    of every induced region with it), so a region is identified by its
    nodes alone; this guards section ↔ region alignment when a
    multi-region checkpoint is resumed.
    """
    digest = hashlib.sha256()
    for node in region.nodes():
        digest.update(repr(node).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class CheckpointState:
    """The persisted EnumMIS control state of one region."""

    #: :func:`region_fingerprint` of the region this section belongs to
    #: ("" in files written before the multi-region format).
    region: str = ""
    known_nodes: list[int] = field(default_factory=list)
    exhausted: bool = False
    queue: list[Answer] = field(default_factory=list)
    processed: list[Answer] = field(default_factory=list)
    #: For multi-region jobs the order matters: answers appear exactly
    #: in the order they entered the cross-region product.
    yielded: list[Answer] = field(default_factory=list)
    # Scalar counters plus the map-valued ``redundant_extensions``;
    # populated on the document, kept here for single-state round
    # trips through :meth:`CheckpointManager.save` / ``load``.
    stats: dict = field(default_factory=dict)


@dataclass
class CheckpointDocument:
    """Everything one checkpoint file holds: sections + product state."""

    regions: list[CheckpointState] = field(default_factory=list)
    #: Region index per product arrival, in arrival order (empty for
    #: single-region jobs, which bypass the product entirely).
    arrivals: list[int] = field(default_factory=list)
    #: Product combinations already delivered to the consumer.
    delivered: int = 0
    stats: dict = field(default_factory=dict)


def _encode_answers(answers: list[Answer]) -> list[list[int]]:
    return [sorted(answer) for answer in answers]


def _decode_answers(raw: list[list[int]]) -> list[Answer]:
    return [frozenset(masks) for masks in raw]


def _decode_stats(raw: dict) -> dict:
    """Normalise persisted statistics counters.

    Scalar counters decode as ints; map-valued counters (the
    ``redundant_extensions`` breakdown) decode as ``{str: int}``.
    Checkpoints from before a counter existed simply lack its key —
    :meth:`~repro.sgr.enum_mis.EnumMISStatistics.restore` tolerates
    that — and unknown keys ride through harmlessly.
    """
    decoded: dict = {}
    for key, value in raw.items():
        if isinstance(value, dict):
            decoded[key] = {str(k): int(v) for k, v in value.items()}
        else:
            decoded[key] = int(value)
    return decoded


def _decode_section(raw: dict) -> CheckpointState:
    return CheckpointState(
        region=str(raw.get("region", "")),
        known_nodes=[int(mask) for mask in raw["known_nodes"]],
        exhausted=bool(raw["exhausted"]),
        queue=_decode_answers(raw["queue"]),
        processed=_decode_answers(raw["processed"]),
        yielded=_decode_answers(raw["yielded"]),
    )


def _encode_section(state: CheckpointState) -> dict:
    return {
        "region": state.region,
        "known_nodes": list(state.known_nodes),
        "exhausted": state.exhausted,
        "queue": _encode_answers(state.queue),
        "processed": _encode_answers(state.processed),
        "yielded": _encode_answers(state.yielded),
    }


class CheckpointManager:
    """Owns one checkpoint file: atomic saves, fingerprint-checked loads."""

    def __init__(
        self, path: str | Path, fingerprint: str, every: int = 64
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.every = every

    @property
    def previous_path(self) -> Path:
        """The older checkpoint generation (rotated on every save)."""
        return self.path.with_name(self.path.name + ".1")

    def load_document(self) -> CheckpointDocument:
        """Read and validate the newest *intact* checkpoint generation.

        Integrity damage on the newest file (truncation mid-write,
        bit-rot caught by the CRC, unreadable file) falls back to the
        previous generation with a warning — every generation on disk
        was a complete, delivered-answer-consistent snapshot when it
        was written, so resuming from the older one repeats work but
        never re-yields or loses answers.  Semantic mismatches (wrong
        job, unsupported version) raise immediately on any generation.
        """
        failures: list[str] = []
        for path in (self.path, self.previous_path):
            if not path.exists():
                failures.append(f"{path}: missing")
                continue
            try:
                document = self._read_document(path)
            except CheckpointIntegrityError as exc:
                failures.append(str(exc))
                continue
            if failures:
                warnings.warn(
                    "newest checkpoint generation is damaged "
                    f"({'; '.join(failures)}); resuming from the intact "
                    f"previous generation {path}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return document
        raise CheckpointIntegrityError(
            "no intact checkpoint generation: " + "; ".join(failures)
        )

    def _read_document(self, path: Path) -> CheckpointDocument:
        """Parse and validate one checkpoint file (no fallback here)."""
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise CheckpointIntegrityError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointIntegrityError(
                f"checkpoint {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointIntegrityError(
                f"checkpoint {path} is not a JSON object"
            )
        version = data.get("version")
        if version not in (1, 2, _FORMAT_VERSION):
            raise CheckpointError(
                f"checkpoint {path} has unsupported version "
                f"{version!r} (expected {_FORMAT_VERSION})"
            )
        if version == _FORMAT_VERSION:
            # Bit-level integrity: a version-3 document always carries
            # its CRC.  A syntactically valid file whose CRC is absent
            # or wrong is damaged, not merely old.
            try:
                stored = int(data.pop("crc32"))
            except (KeyError, TypeError, ValueError):
                raise CheckpointIntegrityError(
                    f"checkpoint {path} is missing its crc32 field"
                ) from None
            actual = _document_crc(data)
            if stored != actual:
                raise CheckpointIntegrityError(
                    f"checkpoint {path} failed its CRC-32 check "
                    f"(stored {stored:#010x}, computed {actual:#010x})"
                )
        if data.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different job "
                "(graph, mode, triangulator or decompose changed)"
            )
        stats = _decode_stats(data.get("stats", {}))
        if version == 1:
            # Pre-multi-region format: the whole file is one section.
            section = _decode_section(data)
            section.stats = stats
            return CheckpointDocument(regions=[section], stats=stats)
        return CheckpointDocument(
            regions=[_decode_section(raw) for raw in data["regions"]],
            arrivals=[int(i) for i in data.get("arrivals", [])],
            delivered=int(data.get("delivered", 0)),
            stats=stats,
        )

    def load_document_if_resuming(
        self, resume: bool
    ) -> CheckpointDocument | None:
        """Load the document when ``resume`` is set; ``None`` on fresh runs.

        A resume against a missing file is an error, not a silent fresh
        start: the caller asked to continue a previous run, and quietly
        re-enumerating from scratch would re-deliver every answer the
        interrupted run already yielded (and burn its runtime again).
        """
        if not resume:
            return None
        if not self.path.exists() and not self.previous_path.exists():
            raise CheckpointError(
                f"cannot resume: checkpoint {self.path} does not exist"
            )
        return self.load_document()

    def save_document(self, document: CheckpointDocument) -> None:
        """Atomically persist ``document`` (write temp, rotate, rename).

        The CRC-32 over the canonical payload is stored in the file, so
        load can prove bit-level integrity; the previous file rotates
        to the ``.1`` generation *before* the rename, so at every
        instant at least one complete generation exists on disk — an
        interrupt between the two renames leaves the old snapshot as
        ``.1`` and load falls back to it.
        """
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "regions": [
                _encode_section(section) for section in document.regions
            ],
            "arrivals": list(document.arrivals),
            "delivered": document.delivered,
            "stats": document.stats,
        }
        payload["crc32"] = _document_crc(payload)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        if self.path.exists():
            os.replace(self.path, self.previous_path)
        os.replace(tmp, self.path)

    # -- single-state convenience (tests, tooling) ---------------------

    def load(self) -> CheckpointState:
        """Load a single-region checkpoint as one state."""
        document = self.load_document()
        if len(document.regions) != 1:
            raise CheckpointError(
                f"checkpoint {self.path} holds {len(document.regions)} "
                "region sections; use load_document()"
            )
        state = document.regions[0]
        state.stats = document.stats
        return state

    def save(self, state: CheckpointState) -> None:
        """Persist a single-region state as a one-section document."""
        self.save_document(
            CheckpointDocument(regions=[state], stats=state.stats)
        )
