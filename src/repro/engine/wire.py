"""Packed wire format for sharded task batches and their results.

The first sharded engine shipped every separator of every task as its
own pickled Python int.  A separator mask over an n-vertex graph is an
~n-bit integer, so each *reference* to a separator cost ~n/8 bytes on
the wire — even though a batch references the same few separators over
and over (every answer in a batch is a maximal pairwise-parallel family
of the same graph, and the direction set is one shared V-snapshot).

This codec replaces that with two ideas:

* **per-batch interning** — every *distinct* mask in a batch is stored
  exactly once, packed into one contiguous little-endian ``uint64``
  buffer (:func:`repro.graph.bitset_np.pack_masks` layout); answers and
  directions then reference masks by dense ``uint32`` index.  A
  repeated separator costs 4 bytes instead of ~n/8 — at n = 2000 that
  is a 64× saving per repeat, and overlap between answers is the norm,
  not the exception;
* **flat buffers** — the table, the reference stream and the per-answer
  lengths are plain ``bytes``, so a batch pickles as a handful of
  fixed-cost byte strings however many separators it mentions.

Decoding interns in the opposite direction: the table's rows are
converted to int masks once (:func:`repro.graph.bitset_np.unpack_rows`)
and answers are rebuilt by indexing, so a worker also pays the big-int
reconstruction once per distinct mask rather than once per reference.

Both directions of the protocol use the same layout:
:class:`PackedBatch` carries tasks coordinator → worker (answers plus
the batch-wide direction set), :class:`PackedResult` carries extended
answers worker → coordinator, together with the worker's stage-timer
statistics delta and its batch compute time (the coordinator subtracts
the latter from the observed round-trip to meter pure IPC time).

The legacy tuple format — ``(region_mask, [(answer_masks,
direction_masks), ...])`` — remains the in-process representation used
by the inline runner (nothing is pickled there, so interning would be
pure overhead) and the fallback when numpy is unavailable.

Untrusted bytes
---------------
The multiprocessing pool moves these structures over a pickle channel
between processes of one user, but the distributed runner reads them
off a TCP socket — bytes a coordinator must treat as untrusted input.
Every decoding entry point therefore *validates before it indexes*:
malformed, truncated or internally inconsistent payloads raise the
typed :class:`WireDecodeError` (never ``IndexError``/``ValueError``
from deep inside numpy, and never an attacker-sized allocation — field
lengths are checked against the actual buffer before anything is
built).  :func:`batch_to_bytes` / :func:`batch_from_bytes` and
:func:`result_to_bytes` / :func:`result_from_bytes` are the flat,
pickle-free serialisations of the two message bodies the socket
protocol frames (statistics travel as a JSON snapshot, masks as the
same packed buffers the in-process format uses).
"""

from __future__ import annotations

import json
import struct
from typing import TYPE_CHECKING, Iterable, NamedTuple

import numpy as np

from repro.engine.base import WireDecodeError
from repro.graph.bitset_np import pack_masks, unpack_rows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sgr.enum_mis import EnumMISStatistics

__all__ = [
    "PackedBatch",
    "PackedResult",
    "WireDecodeError",
    "encode_batch",
    "decode_batch",
    "encode_result",
    "decode_result",
    "batch_to_bytes",
    "batch_from_bytes",
    "result_to_bytes",
    "result_from_bytes",
    "reference_batch",
    "legacy_batch",
]

_REF_DTYPE = np.dtype("<u4")
_WORD_DTYPE = np.dtype("<u8")

#: Upper bound on any single length field of a serialised batch or
#: result.  Frames are bounded again at the transport layer; this cap
#: stops a corrupt length word from provoking a giant allocation even
#: when a decoder is fed bytes that never crossed a socket.
MAX_WIRE_FIELD_BYTES = 1 << 28


class PackedBatch(NamedTuple):
    """One coordinator → worker task batch in packed form."""

    #: Induced-subgraph selector of the region being enumerated.
    region_mask: int
    #: ``uint64`` words per mask row (fixed by the full graph's size).
    words: int
    #: The interned mask table: ``len(table) // (words * 8)`` rows.
    table: bytes
    #: ``uint32`` indices into the table, all answers concatenated.
    answer_refs: bytes
    #: ``uint32`` member count per answer (one entry per task).
    answer_lens: bytes
    #: ``uint32`` indices of the direction masks, shared by every
    #: answer of the batch (the V-snapshot, or the barrier node).
    direction_refs: bytes

    @property
    def nbytes(self) -> int:
        """Wire size of the mask payload (the pickle adds ~100 bytes)."""
        return (
            len(self.table)
            + len(self.answer_refs)
            + len(self.answer_lens)
            + len(self.direction_refs)
        )


class PackedResult(NamedTuple):
    """One worker → coordinator batch result in packed form."""

    words: int
    table: bytes
    answer_refs: bytes
    answer_lens: bytes
    #: Wall-clock nanoseconds the worker spent executing the batch
    #: (decode → extend loop → encode); round-trip minus this is IPC.
    compute_ns: int
    #: Stage-timer / counter delta covering exactly this batch.
    stats: "EnumMISStatistics"

    @property
    def nbytes(self) -> int:
        """Wire size of the mask payload (the pickle adds ~100 bytes)."""
        return len(self.table) + len(self.answer_refs) + len(self.answer_lens)


class _MaskInterner:
    """Assign dense indices to distinct masks, first-seen order."""

    __slots__ = ("index_of", "masks")

    def __init__(self) -> None:
        self.index_of: dict[int, int] = {}
        self.masks: list[int] = []

    def intern(self, mask: int) -> int:
        index = self.index_of.get(mask)
        if index is None:
            index = self.index_of[mask] = len(self.masks)
            self.masks.append(mask)
        return index


def _encode_answer_lists(
    answers: Iterable[tuple[int, ...]], interner: _MaskInterner
) -> tuple[bytes, bytes]:
    refs: list[int] = []
    lens: list[int] = []
    intern = interner.intern
    for answer in answers:
        lens.append(len(answer))
        refs.extend(intern(mask) for mask in answer)
    return (
        np.asarray(refs, dtype=_REF_DTYPE).tobytes(),
        np.asarray(lens, dtype=_REF_DTYPE).tobytes(),
    )


def _pack_table(interner: _MaskInterner, words: int) -> bytes:
    if not interner.masks:
        return b""
    return pack_masks(interner.masks, words).tobytes()


def _decode_table(table: bytes, words: int) -> list[int]:
    if not table:
        return []
    matrix = np.frombuffer(table, dtype=_WORD_DTYPE).reshape(-1, words)
    return unpack_rows(matrix)


def _decode_answer_lists(
    table: list[int], answer_refs: bytes, answer_lens: bytes
) -> list[tuple[int, ...]]:
    refs = np.frombuffer(answer_refs, dtype=_REF_DTYPE).tolist()
    answers: list[tuple[int, ...]] = []
    cursor = 0
    for length in np.frombuffer(answer_lens, dtype=_REF_DTYPE).tolist():
        answers.append(
            tuple(table[ref] for ref in refs[cursor : cursor + length])
        )
        cursor += length
    return answers


def encode_batch(
    region_mask: int,
    answers: list[tuple[int, ...]],
    directions: tuple[int, ...],
    words: int,
) -> PackedBatch:
    """Pack a task batch: per-answer separator sets + shared directions."""
    interner = _MaskInterner()
    answer_refs, answer_lens = _encode_answer_lists(answers, interner)
    direction_refs = np.asarray(
        [interner.intern(mask) for mask in directions], dtype=_REF_DTYPE
    ).tobytes()
    return PackedBatch(
        region_mask=region_mask,
        words=words,
        table=_pack_table(interner, words),
        answer_refs=answer_refs,
        answer_lens=answer_lens,
        direction_refs=direction_refs,
    )


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise WireDecodeError(message)


def _validate_refs(
    refs: bytes, lens: bytes | None, rows: int, what: str
) -> None:
    """All invariants that make indexing into the mask table safe."""
    _check(
        len(refs) % _REF_DTYPE.itemsize == 0,
        f"{what} reference stream is not a whole number of uint32 words",
    )
    if lens is not None:
        _check(
            len(lens) % _REF_DTYPE.itemsize == 0,
            f"{what} length stream is not a whole number of uint32 words",
        )
        lengths = np.frombuffer(lens, dtype=_REF_DTYPE)
        total = int(lengths.sum(dtype=np.int64))
        _check(
            total == len(refs) // _REF_DTYPE.itemsize,
            f"{what} lengths sum to {total} but the reference stream "
            f"holds {len(refs) // _REF_DTYPE.itemsize} entries",
        )
    if refs:
        references = np.frombuffer(refs, dtype=_REF_DTYPE)
        top = int(references.max())
        _check(
            top < rows,
            f"{what} references row {top} of a {rows}-row mask table",
        )


def _validate_table(table: bytes, words: int) -> int:
    """Return the table's row count; raise if the shape is impossible."""
    _check(words >= 1, f"words per mask must be >= 1, got {words}")
    row_bytes = words * _WORD_DTYPE.itemsize
    _check(
        len(table) % row_bytes == 0,
        f"mask table of {len(table)} bytes is not a whole number of "
        f"{row_bytes}-byte rows",
    )
    return len(table) // row_bytes


def validate_batch(batch: PackedBatch) -> None:
    """Raise :class:`WireDecodeError` unless ``batch`` decodes safely."""
    rows = _validate_table(batch.table, batch.words)
    _check(batch.region_mask >= 0, "region mask must be non-negative")
    _validate_refs(batch.answer_refs, batch.answer_lens, rows, "answer")
    _validate_refs(batch.direction_refs, None, rows, "direction")


def validate_result(result: PackedResult) -> None:
    """Raise :class:`WireDecodeError` unless ``result`` decodes safely."""
    rows = _validate_table(result.table, result.words)
    _validate_refs(result.answer_refs, result.answer_lens, rows, "answer")


def decode_batch(
    batch: PackedBatch,
) -> tuple[int, list[tuple[int, ...]], tuple[int, ...]]:
    """Invert :func:`encode_batch`: ``(region_mask, answers, directions)``.

    Validates the batch first, so malformed input raises
    :class:`WireDecodeError` rather than an arbitrary numpy/indexing
    error from half-way through decoding.
    """
    validate_batch(batch)
    table = _decode_table(batch.table, batch.words)
    answers = _decode_answer_lists(
        table, batch.answer_refs, batch.answer_lens
    )
    directions = tuple(
        table[ref]
        for ref in np.frombuffer(batch.direction_refs, dtype=_REF_DTYPE)
    )
    return batch.region_mask, answers, directions


def encode_result(
    answers: list[tuple[int, ...]],
    words: int,
    compute_ns: int,
    stats: "EnumMISStatistics",
) -> PackedResult:
    """Pack a batch's extended answers for the trip back."""
    interner = _MaskInterner()
    answer_refs, answer_lens = _encode_answer_lists(answers, interner)
    return PackedResult(
        words=words,
        table=_pack_table(interner, words),
        answer_refs=answer_refs,
        answer_lens=answer_lens,
        compute_ns=compute_ns,
        stats=stats,
    )


def decode_result(result: PackedResult) -> list[tuple[int, ...]]:
    """Invert :func:`encode_result` (the mask payload half)."""
    validate_result(result)
    table = _decode_table(result.table, result.words)
    return _decode_answer_lists(
        table, result.answer_refs, result.answer_lens
    )


# ----------------------------------------------------------------------
# Flat byte serialisation (the socket transport's message bodies)
# ----------------------------------------------------------------------

_BATCH_HEADER = struct.Struct("!IIIIII")
_RESULT_HEADER = struct.Struct("!IqIIII")


def _split_fields(
    data: bytes, offset: int, lengths: tuple[int, ...], what: str
) -> list[bytes]:
    """Slice consecutive length-prefixed fields, validating first."""
    total = offset
    for length in lengths:
        _check(
            0 <= length <= MAX_WIRE_FIELD_BYTES,
            f"{what} field length {length} exceeds the wire cap",
        )
        total += length
    _check(
        total == len(data),
        f"{what} of {len(data)} bytes does not match its declared "
        f"field lengths (expected {total})",
    )
    fields = []
    for length in lengths:
        fields.append(data[offset : offset + length])
        offset += length
    return fields


def batch_to_bytes(batch: PackedBatch) -> bytes:
    """Serialise a :class:`PackedBatch` into one flat byte string."""
    mask = batch.region_mask
    region = mask.to_bytes(max(1, (mask.bit_length() + 7) // 8), "little")
    header = _BATCH_HEADER.pack(
        batch.words,
        len(region),
        len(batch.table),
        len(batch.answer_refs),
        len(batch.answer_lens),
        len(batch.direction_refs),
    )
    return b"".join(
        (
            header,
            region,
            batch.table,
            batch.answer_refs,
            batch.answer_lens,
            batch.direction_refs,
        )
    )


def batch_from_bytes(data: bytes) -> PackedBatch:
    """Rebuild a validated :class:`PackedBatch` from untrusted bytes."""
    _check(
        len(data) >= _BATCH_HEADER.size,
        f"batch frame of {len(data)} bytes is shorter than its header",
    )
    words, *lengths = _BATCH_HEADER.unpack_from(data)
    region, table, refs, lens, directions = _split_fields(
        data, _BATCH_HEADER.size, tuple(lengths), "batch frame"
    )
    batch = PackedBatch(
        region_mask=int.from_bytes(region, "little"),
        words=words,
        table=table,
        answer_refs=refs,
        answer_lens=lens,
        direction_refs=directions,
    )
    validate_batch(batch)
    return batch


def result_to_bytes(result: PackedResult) -> bytes:
    """Serialise a :class:`PackedResult` (statistics as JSON snapshot)."""
    stats_blob = json.dumps(result.stats.snapshot()).encode()
    header = _RESULT_HEADER.pack(
        result.words,
        result.compute_ns,
        len(result.table),
        len(result.answer_refs),
        len(result.answer_lens),
        len(stats_blob),
    )
    return b"".join(
        (
            header,
            result.table,
            result.answer_refs,
            result.answer_lens,
            stats_blob,
        )
    )


def _stats_from_blob(blob: bytes) -> "EnumMISStatistics":
    from repro.sgr.enum_mis import EnumMISStatistics

    try:
        raw = json.loads(blob)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireDecodeError(
            f"result statistics are not valid JSON: {exc}"
        ) from exc
    _check(isinstance(raw, dict), "result statistics must be an object")
    counters: dict = {}
    for key, value in raw.items():
        if isinstance(value, dict):
            _check(
                all(
                    isinstance(k, str) and isinstance(v, int)
                    for k, v in value.items()
                ),
                f"statistics map {key!r} must hold integer counters",
            )
            counters[str(key)] = {str(k): int(v) for k, v in value.items()}
        elif isinstance(value, int):
            counters[str(key)] = value
        else:
            raise WireDecodeError(
                f"statistics counter {key!r} must be an integer"
            )
    stats = EnumMISStatistics()
    stats.restore(counters)
    return stats


def result_from_bytes(data: bytes) -> PackedResult:
    """Rebuild a validated :class:`PackedResult` from untrusted bytes."""
    _check(
        len(data) >= _RESULT_HEADER.size,
        f"result frame of {len(data)} bytes is shorter than its header",
    )
    words, compute_ns, *lengths = _RESULT_HEADER.unpack_from(data)
    table, refs, lens, stats_blob = _split_fields(
        data, _RESULT_HEADER.size, tuple(lengths), "result frame"
    )
    _check(compute_ns >= 0, "result compute time must be non-negative")
    result = PackedResult(
        words=words,
        table=table,
        answer_refs=refs,
        answer_lens=lens,
        compute_ns=compute_ns,
        stats=_stats_from_blob(stats_blob),
    )
    validate_result(result)
    return result


# ----------------------------------------------------------------------
# Reference workload for wire-format sizing (benchmark + tests)
# ----------------------------------------------------------------------


def reference_batch(
    n: int, seed: int = 99
) -> tuple[list[tuple[int, ...]], tuple[int, ...], int]:
    """A representative pop batch over an n-vertex graph: ``(answers,
    directions, words)``.

    The shape mirrors what the coordinator actually dispatches: 16
    answers of 20 separators drawn from a shared pool of 60 (answers
    of one region overlap heavily — they are maximal pairwise-parallel
    families of the same graph) against a 40-separator V-snapshot.
    Both the payload microbenchmark and the wire-format tests size
    *this* batch, so the recorded shrink factor and the tested bound
    always measure the same workload.
    """
    import random

    rng = random.Random(seed)
    words = (n + 63) // 64
    pool = [rng.getrandbits(n) | 1 << rng.randrange(n) for __ in range(60)]
    answers = [tuple(rng.sample(pool, 20)) for __ in range(16)]
    directions = tuple(rng.sample(pool, 40))
    return answers, directions, words


def legacy_batch(
    region_mask: int,
    answers: list[tuple[int, ...]],
    directions: tuple[int, ...],
    words: int,
) -> tuple[int, list[tuple[tuple[int, ...], tuple[int, ...]]]]:
    """The pre-packed-wire batch structure, sized as it really pickled.

    Every answer member is rebuilt as a *fresh* int object — pickle
    dedups by object identity only, and the original coordinator
    decoded each answer's masks separately, so equal masks across
    answers never shared a pickle memo entry.  The direction tuple is
    one shared object per batch, exactly as the old dispatch loop
    passed it.
    """
    return (
        region_mask,
        [
            (
                tuple(
                    int.from_bytes(m.to_bytes(words * 8, "little"), "little")
                    for m in answer
                ),
                directions,
            )
            for answer in answers
        ],
    )
