"""Per-batch resource watchdog for enumeration workers.

A worker executing an ``Extend`` batch can be wedged by a pathological
input: one (answer, direction) pair whose triangulation blows up in
time or memory.  Without supervision the OS eventually OOM-kills the
process, the coordinator sees a dead connection, requeues the batch —
and the next worker dies the same way, taking the fleet down in a loop.

:class:`ResourceWatchdog` bounds one batch cooperatively instead: it is
armed around ``WorkerState.run_batch`` with a wall-clock deadline and
an RSS ceiling (:class:`BatchLimits`), and a small daemon thread
samples ``/proc/self/statm`` (falling back to ``resource.getrusage``
where procfs is unavailable — no psutil dependency anywhere) while the
batch computes.  The compute loop polls :meth:`ResourceWatchdog.check`
between (answer, direction) pairs; on breach it raises
:class:`BatchAbortedError`, the worker frees its scratch state, reports
a typed failure — a :class:`BatchFailure` value through the process
pool, a ``BATCH_FAILED`` protocol frame over a socket — and *stays
alive* for the next batch.

Abort granularity is one pair: a single pair that never returns is
caught by the transport's batch timeout (the connection is dropped and
the batch requeued), not by the watchdog — the watchdog's job is the
common case where a batch is too big or too leaky, which splitting and
quarantine can actually fix.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.engine.base import EngineError

__all__ = [
    "BatchAbortedError",
    "BatchFailure",
    "BatchLimits",
    "ResourceWatchdog",
    "current_rss_bytes",
]


def current_rss_bytes() -> int:
    """This process's resident set size, in bytes (0 when unknowable).

    Reads ``/proc/self/statm`` (current RSS, Linux); degrades to
    ``resource.getrusage`` — which reports the *peak* RSS, a
    conservative over-estimate for a ceiling check — and finally to 0,
    which disables RSS enforcement rather than crashing the worker.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(usage) * 1024  # ru_maxrss is KiB on Linux
    except Exception:  # pragma: no cover - exotic platforms
        return 0


@dataclass(frozen=True)
class BatchLimits:
    """Per-batch resource ceilings enforced by the watchdog.

    ``None`` disables the corresponding check; ``BatchLimits()`` is the
    unlimited default and arms nothing.
    """

    deadline_s: float | None = None
    rss_limit_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise EngineError("batch deadline_s must be positive")
        if self.rss_limit_bytes is not None and self.rss_limit_bytes <= 0:
            raise EngineError("batch rss_limit_bytes must be positive")

    @property
    def enabled(self) -> bool:
        return self.deadline_s is not None or self.rss_limit_bytes is not None

    @classmethod
    def from_cli(
        cls, deadline_s: float | None, rss_mb: float | None
    ) -> "BatchLimits | None":
        """Build limits from CLI-flavoured values; ``None`` when both unset."""
        if deadline_s is None and rss_mb is None:
            return None
        rss_bytes = None if rss_mb is None else int(rss_mb * (1 << 20))
        return cls(deadline_s=deadline_s, rss_limit_bytes=rss_bytes)


class BatchAbortedError(EngineError):
    """A batch was aborted cooperatively by the resource watchdog.

    Carries what the failure report needs: why (``"deadline"``,
    ``"rss"``, or ``"poison"`` from fault injection), how long the
    batch had been running, and the peak RSS the monitor observed.
    """

    def __init__(self, reason: str, elapsed_s: float, peak_rss: int) -> None:
        super().__init__(
            f"batch aborted by resource watchdog ({reason}) after "
            f"{elapsed_s:.3f}s, peak RSS {peak_rss} bytes"
        )
        self.reason = reason
        self.elapsed_s = elapsed_s
        self.peak_rss = peak_rss


@dataclass(frozen=True)
class BatchFailure:
    """Picklable failure value a pool worker returns instead of a result.

    A cooperative abort must not poison the ``ProcessPoolExecutor`` —
    raising out of the task function is fine, but a *value* survives
    pickling problems and keeps the failure path identical to the
    socket worker's BATCH_FAILED frame.
    """

    reason: str
    elapsed_s: float
    peak_rss: int


class ResourceWatchdog:
    """One monitor thread bounding the batches of one worker.

    The thread is created lazily on the first :meth:`arm` and lives for
    the worker's lifetime (armed → sampling, disarmed → parked on an
    event), so per-batch cost is two Event operations, not a thread
    spawn.  ``check()`` — called by the compute loop between pairs —
    also samples time and RSS directly, so a breach is detected even if
    the monitor thread has not run since it happened.
    """

    def __init__(
        self, limits: BatchLimits, *, interval_s: float = 0.05
    ) -> None:
        self.limits = limits
        self._interval_s = interval_s
        self._lock = threading.Lock()
        self._armed = threading.Event()
        self._stopped = False
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._peak_rss = 0
        self._breach: str | None = None

    # -- batch lifecycle -------------------------------------------------

    def arm(self) -> None:
        """Start supervising one batch (resets peak/breach state)."""
        if not self.limits.enabled:
            return
        with self._lock:
            self._started_at = time.monotonic()
            self._peak_rss = current_rss_bytes()
            self._breach = None
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-batch-watchdog", daemon=True
            )
            self._thread.start()
        self._armed.set()

    def disarm(self) -> None:
        """Stop supervising (the batch finished, however it finished)."""
        self._armed.clear()

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started_at

    @property
    def peak_rss(self) -> int:
        return self._peak_rss

    def check(self) -> None:
        """Raise :class:`BatchAbortedError` if any limit is breached.

        Called from the compute loop between (answer, direction) pairs;
        samples directly in addition to reading the monitor's verdict.
        """
        if not self.limits.enabled:
            return
        breach = self._breach or self._sample()
        if breach is not None:
            raise BatchAbortedError(breach, self.elapsed_s, self._peak_rss)

    def abort(self, reason: str) -> "BatchAbortedError":
        """Build an abort error for an injected fault (chaos poison)."""
        return BatchAbortedError(reason, self.elapsed_s, self._peak_rss)

    # -- monitor internals ----------------------------------------------

    def _sample(self) -> str | None:
        limits = self.limits
        rss = current_rss_bytes()
        with self._lock:
            if rss > self._peak_rss:
                self._peak_rss = rss
            if (
                limits.deadline_s is not None
                and time.monotonic() - self._started_at > limits.deadline_s
            ):
                self._breach = "deadline"
            elif (
                limits.rss_limit_bytes is not None
                and rss > limits.rss_limit_bytes
            ):
                self._breach = "rss"
            return self._breach

    def _run(self) -> None:  # pragma: no cover - timing-dependent thread
        while not self._stopped:
            self._armed.wait()
            if self._stopped:
                return
            self._sample()
            time.sleep(self._interval_s)

    def close(self) -> None:
        self._stopped = True
        self._armed.set()
