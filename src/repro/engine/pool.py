"""Worker-side execution of sharded EnumMIS tasks.

Protocol
--------
The coordinator ships a *graph payload* once per worker (dense label
list + bitmask adjacency, so the rebuilt graph has **identical** vertex
indices) and then streams *task batches*.  A task batch is::

    (region_mask, [(answer_masks, direction_masks), ...])

where ``region_mask`` selects the induced subgraph being enumerated
(connected component or atom — the full graph in the common case) and
each job asks: for this answer J (a tuple of separator masks) and each
direction node v (a separator mask), compute
``Extend({v} ∪ {u ∈ J : ¬(v ♮ u)})``.  The worker returns one extended
answer per (J, v) pair — as a sorted tuple of separator masks — plus an
:class:`~repro.sgr.enum_mis.EnumMISStatistics` delta covering exactly
that batch, which the coordinator folds into the run aggregate.

Everything crossing the process boundary is tuples of ints, so IPC cost
is a pickle of a few machine words per separator regardless of label
types.

Each worker keeps one :class:`~repro.sgr.separator_graph.MinimalSeparatorSGR`
per region for its whole lifetime, so the interned separator table and
the memoized crossing cache warm up once and are shared by every task
the worker ever runs — the worker-pool analogue of the caches the
serial pipeline builds up in a single process.

Runners
-------
:class:`PoolRunner` executes batches on a ``ProcessPoolExecutor``;
:class:`InlineRunner` executes them synchronously in-process (used by
the serial backend for checkpointable runs, and handy for debugging
the coordinator without multiprocessing in the way).  Both return
:class:`concurrent.futures.Future` objects so the coordinator has a
single collection path.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Hashable

from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.engine.base import EngineError
from repro.graph.core import IndexedGraph, NodeInterner, iter_bits
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics
from repro.sgr.separator_graph import MinimalSeparatorSGR

__all__ = [
    "GraphPayload",
    "InlineRunner",
    "PoolRunner",
    "default_worker_count",
    "make_payload",
    "triangulator_spec",
]

# (answer separator masks, direction separator masks)
TaskJob = tuple[tuple[int, ...], tuple[int, ...]]
# (region mask, jobs)
TaskBatch = tuple[int, list[TaskJob]]
# (one extended answer per (answer, direction) pair, stats delta)
BatchResult = tuple[list[tuple[int, ...]], EnumMISStatistics]

# (labels, adjacency masks, alive mask, triangulator spec, graph-core
# backend name) — the last element makes workers rebuild the graph on
# the same core class (indexed / numpy) the coordinator selected.
GraphPayload = tuple[
    list[Hashable], list[int], int, "str | Triangulator", str
]


def default_worker_count() -> int:
    """The pool size used when a job does not pin one.

    Uses the scheduler affinity mask where available (cgroup/affinity
    limited containers report far fewer usable cores than
    ``os.cpu_count()``; oversubscribing those turns sharding into pure
    overhead).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


def triangulator_spec(
    triangulator: str | Triangulator,
) -> str | Triangulator:
    """Reduce a heuristic to something cheap and safe to ship to workers.

    Registry-backed heuristics travel as their name (workers re-resolve
    locally, so nothing needs pickling); custom instances are shipped
    as-is and must therefore be picklable.
    """
    if isinstance(triangulator, str):
        return triangulator
    try:
        if get_triangulator(triangulator.name) == triangulator:
            return triangulator.name
    except ValueError:
        pass
    return triangulator


def make_payload(
    graph: Graph, triangulator: str | Triangulator
) -> GraphPayload:
    """Snapshot ``graph`` for worker-side reconstruction."""
    core = graph.core
    try:
        from repro.graph.bitset_np import core_backend_name

        backend = core_backend_name(core)
    except ImportError:  # numpy unavailable: only the int-mask core exists
        backend = "indexed"
    return (
        graph.interner.labels_dense,
        list(core.adj),
        core.alive,
        triangulator_spec(triangulator),
        backend,
    )


def _rebuild_graph(
    labels: list[Hashable], adj: list[int], alive: int, backend: str
) -> Graph:
    core = IndexedGraph.__new__(IndexedGraph)
    core.adj = list(adj)
    core.alive = alive
    core.num_edges = sum(adj[i].bit_count() for i in iter_bits(alive)) // 2
    if backend != "indexed":
        from repro.graph.bitset_np import GRAPH_BACKENDS

        core = GRAPH_BACKENDS[backend].from_indexed(core)
    return Graph._from_parts(core, NodeInterner.from_dense(labels, alive))


class _WorkerState:
    """Per-process state: the graph plus one warm SGR per region."""

    def __init__(self, payload: GraphPayload) -> None:
        labels, adj, alive, triangulator, backend = payload
        self.graph = _rebuild_graph(labels, adj, alive, backend)
        self.triangulator = get_triangulator(triangulator)
        # region mask → (region graph, SGR, mask → separator cache)
        self._regions: dict[
            int, tuple[Graph, MinimalSeparatorSGR, dict[int, frozenset]]
        ] = {}

    def _region(
        self, region_mask: int
    ) -> tuple[Graph, MinimalSeparatorSGR, dict[int, frozenset]]:
        entry = self._regions.get(region_mask)
        if entry is None:
            if region_mask == self.graph.core.alive:
                region = self.graph
            else:
                region = self.graph.subgraph(
                    self.graph.label_set(region_mask)
                )
            sgr = MinimalSeparatorSGR(region, self.triangulator)
            entry = (region, sgr, {})
            self._regions[region_mask] = entry
        return entry

    def run_batch(self, batch: TaskBatch) -> BatchResult:
        region_mask, jobs = batch
        region, sgr, separator_of = self._region(region_mask)
        stats = EnumMISStatistics()
        sgr.attach_statistics(stats)
        has_edges_batch = sgr.has_edges_batch
        label_set = region.label_set
        mask_of = region.mask_of
        out: list[tuple[int, ...]] = []
        for answer_masks, direction_masks in jobs:
            answer = []
            for mask in answer_masks:
                separator = separator_of.get(mask)
                if separator is None:
                    separator = label_set(mask)
                    separator_of[mask] = separator
                answer.append(separator)
            for v_mask in direction_masks:
                v = separator_of.get(v_mask)
                if v is None:
                    v = label_set(v_mask)
                    separator_of[v_mask] = v
                crossed = has_edges_batch(v, answer)
                stats.edge_oracle_calls += len(answer)
                kept = {u for u, edge in zip(answer, crossed) if not edge}
                kept.add(v)
                stats.extend_calls += 1
                extended = sgr.extend(frozenset(kept))
                out.append(
                    tuple(sorted(mask_of(sep) for sep in extended))
                )
        return out, stats


_WORKER_STATE: _WorkerState | None = None


def _init_worker(payload: GraphPayload) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(payload)


def _run_batch(batch: TaskBatch) -> BatchResult:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    return _WORKER_STATE.run_batch(batch)


class InlineRunner:
    """Synchronous runner: tasks execute immediately in this process."""

    workers = 1

    def __init__(self, payload: GraphPayload) -> None:
        self._state = _WorkerState(payload)

    def submit(self, batch: TaskBatch) -> "Future[BatchResult]":
        future: Future = Future()
        try:
            future.set_result(self._state.run_batch(batch))
        except BaseException as exc:  # surfaced via future.result()
            future.set_exception(exc)
        return future

    def close(self) -> None:
        pass


class PoolRunner:
    """Runner backed by a ``ProcessPoolExecutor`` of warm workers."""

    def __init__(self, payload: GraphPayload, workers: int) -> None:
        if workers < 1:
            raise EngineError("sharded execution needs at least 1 worker")
        self.workers = workers
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(payload,),
            )
        except Exception as exc:  # pragma: no cover - platform-specific
            raise EngineError(
                f"could not start worker pool ({exc}); custom "
                "triangulators must be picklable to shard"
            ) from exc

    def submit(self, batch: TaskBatch) -> "Future[BatchResult]":
        return self._executor.submit(_run_batch, batch)

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
