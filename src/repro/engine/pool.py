"""Worker-side execution of sharded EnumMIS tasks.

Protocol
--------
The coordinator ships a *graph payload* once per worker and then
streams *task batches*.

The payload (:class:`GraphPayload`) carries the graph as its packed
``uint64`` adjacency word matrix (dense label list + alive mask + the
triangulator spec + the graph-core backend name ride along, so the
rebuilt graph has **identical** vertex indices and runs on the same
core class the coordinator selected).  For a worker pool the matrix
lives in a ``multiprocessing.shared_memory`` segment
(:class:`~repro.graph.bitset_np.SharedPackedBuffer`): the pickle
channel moves only the segment name and shape, every worker maps the
same physical pages read-only, and a numpy-backed worker adopts the
mapping directly as its core's packed mirror — zero copies of the
adjacency anywhere.  The runner that created the segment owns its
lifetime and unlinks it on close, interrupt and crash-unwind paths;
workers only ever map it (see ``SharedPackedBuffer`` for the
resource-tracker discipline).  When numpy is unavailable the payload
degrades to the original dense int-mask form.

Task batches travel in the packed wire format of
:mod:`repro.engine.wire` — per-batch interned mask tables with
``uint32`` references, one contiguous buffer each way — or, for
in-process execution where nothing is pickled, as the legacy
``(region_mask, [(answer_masks, direction_masks), ...])`` tuples.
Each job asks: for this answer J (a tuple of separator masks) and each
direction node v (a separator mask), compute
``Extend({v} ∪ {u ∈ J : ¬(v ♮ u)})``.  The worker returns one extended
answer per (J, v) pair plus an
:class:`~repro.sgr.enum_mis.EnumMISStatistics` delta covering exactly
that batch — including the ``extend_time_ns`` / ``crossing_time_ns``
stage timers the coordinator's adaptive batcher feeds on — which the
coordinator folds into the run aggregate.

Each worker keeps one :class:`~repro.sgr.separator_graph.MinimalSeparatorSGR`
per region for its whole lifetime, so the interned separator table and
the memoized crossing cache warm up once and are shared by every task
the worker ever runs — the worker-pool analogue of the caches the
serial pipeline builds up in a single process.

Runners
-------
:class:`PoolRunner` executes batches on a ``ProcessPoolExecutor``;
:class:`InlineRunner` executes them synchronously in-process (used by
the serial backend for checkpointable runs, and handy for debugging
the coordinator without multiprocessing in the way).  Both return
:class:`concurrent.futures.Future` objects so the coordinator has a
single collection path.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Hashable

from repro.chordal.triangulate import Triangulator, get_triangulator
from repro.engine.base import EngineError
from repro.engine.watchdog import (
    BatchAbortedError,
    BatchFailure,
    BatchLimits,
    ResourceWatchdog,
    current_rss_bytes,
)
from repro.graph.core import IndexedGraph, NodeInterner
from repro.graph.graph import Graph
from repro.sgr.enum_mis import EnumMISStatistics
from repro.sgr.separator_graph import MinimalSeparatorSGR

try:  # numpy unavailable: int-mask payloads, legacy wire format
    from repro.graph import bitset_np as _bitset
    from repro.engine import wire as _wire
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _bitset = None
    _wire = None

__all__ = [
    "GraphPayload",
    "InlineRunner",
    "PoolRunner",
    "WorkerState",
    "default_worker_count",
    "make_payload",
    "poison_from_env",
    "triangulator_spec",
]

# (answer separator masks, direction separator masks)
TaskJob = tuple[tuple[int, ...], tuple[int, ...]]
# Legacy/in-process batch: (region mask, jobs)
TaskBatch = tuple[int, list[TaskJob]]
# Legacy/in-process result: (one extended answer per (answer,
# direction) pair, stats delta, worker compute time in ns — timed in
# the worker so a numpy-less pool still meters round-trip − compute
# as IPC)
BatchResult = tuple[list[tuple[int, ...]], EnumMISStatistics, int]


@dataclass(frozen=True)
class GraphPayload:
    """Everything a worker needs to rebuild the coordinator's graph.

    Exactly one of the adjacency carriers is set: ``shm_name`` (packed
    matrix in a shared-memory segment — the pool path), ``packed``
    (the same matrix inline as bytes — in-process runners, tests) or
    ``adj`` (dense int masks — the numpy-less fallback).
    """

    labels: tuple[Hashable, ...]
    alive: int
    num_edges: int
    triangulator: "str | Triangulator"
    backend: str
    rows: int
    words: int
    shm_name: str | None = None
    packed: bytes | None = None
    adj: tuple[int, ...] | None = None


def default_worker_count() -> int:
    """The pool size used when a job does not pin one.

    Uses the scheduler affinity mask where available (cgroup/affinity
    limited containers report far fewer usable cores than
    ``os.cpu_count()``; oversubscribing those turns sharding into pure
    overhead).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


def triangulator_spec(
    triangulator: str | Triangulator,
) -> str | Triangulator:
    """Reduce a heuristic to something cheap and safe to ship to workers.

    Registry-backed heuristics travel as their name (workers re-resolve
    locally, so nothing needs pickling); custom instances are shipped
    as-is and must therefore be picklable.
    """
    if isinstance(triangulator, str):
        return triangulator
    try:
        if get_triangulator(triangulator.name) == triangulator:
            return triangulator.name
    except ValueError:
        pass
    return triangulator


def make_payload(
    graph: Graph, triangulator: str | Triangulator
) -> GraphPayload:
    """Snapshot ``graph`` for worker-side reconstruction.

    The returned payload carries the adjacency inline (packed bytes,
    or int masks without numpy); :class:`PoolRunner` promotes it to a
    shared-memory segment before the pickle channel ever sees it.
    """
    core = graph.core
    labels = tuple(graph.interner.labels_dense)
    spec = triangulator_spec(triangulator)
    if _bitset is None:
        return GraphPayload(
            labels=labels,
            alive=core.alive,
            num_edges=core.num_edges,
            triangulator=spec,
            backend="indexed",
            rows=len(core.adj),
            words=0,
            adj=tuple(core.adj),
        )
    words = _bitset.word_count(len(core.adj))
    packed = _bitset.pack_masks(core.adj, words)
    return GraphPayload(
        labels=labels,
        alive=core.alive,
        num_edges=core.num_edges,
        triangulator=spec,
        backend=_bitset.core_backend_name(core),
        rows=len(core.adj),
        words=words,
        packed=packed.tobytes(),
    )


#: One degradation warning per worker process, not one per region.
_DEGRADATION_WARNED = False


def _warn_degraded(requested: str, actual: str) -> None:
    global _DEGRADATION_WARNED
    if not _DEGRADATION_WARNED:
        _DEGRADATION_WARNED = True
        warnings.warn(
            f"worker cannot run the {requested!r} graph-kernel tier "
            f"(compiled extension unavailable in this process); "
            f"degrading to {actual!r}.  Mixed-tier execution is "
            "correct but skews per-worker timings — see the "
            "kernel_tiers breakdown in the merged statistics",
            RuntimeWarning,
            stacklevel=2,
        )


def _rebuild_graph(
    payload: GraphPayload,
) -> tuple[Graph, "object | None"]:
    """Reconstruct the coordinator's graph from a payload.

    Returns ``(graph, shared_buffer)``; the buffer (when the payload
    named a shared segment) must stay referenced for the graph's
    lifetime — its mapping backs the core's packed mirror.
    """
    buffer = None
    if payload.adj is not None:
        adj = list(payload.adj)
        matrix = None
    else:
        assert _bitset is not None, "packed payload without numpy"
        if payload.shm_name is not None:
            buffer = _bitset.SharedPackedBuffer.attach(
                payload.shm_name, payload.rows, payload.words
            )
            matrix = buffer.matrix
        else:
            import numpy as np

            matrix = np.frombuffer(
                payload.packed, dtype=np.dtype("<u8")
            ).reshape(payload.rows, payload.words)
        adj = None
    if payload.backend != "indexed" and matrix is not None:
        # Resolve the coordinator's backend name in *this* process: a
        # worker without a usable compiled extension rebuilds a native
        # payload on the numpy core (same kernel semantics, no failure).
        core_cls = _bitset.GRAPH_BACKENDS.get(
            payload.backend, _bitset.NumpyGraphCore
        )
        if payload.backend == "native" and not core_cls.runtime_available():
            core_cls = _bitset.NumpyGraphCore
            _warn_degraded(payload.backend, "numpy")
        core = core_cls.from_packed(matrix, payload.alive, payload.num_edges)
    else:
        core = IndexedGraph.__new__(IndexedGraph)
        core.adj = (
            adj if adj is not None else _bitset.unpack_rows(matrix)
        )
        core.alive = payload.alive
        core.num_edges = payload.num_edges
        if payload.backend != "indexed":
            core = _bitset.GRAPH_BACKENDS[payload.backend].from_indexed(core)
    interner = NodeInterner.from_dense(list(payload.labels), payload.alive)
    return Graph._from_parts(core, interner), buffer


class WorkerState:
    """Per-worker state: the graph plus one warm SGR per region.

    This is the *single* worker code path — the multiprocessing pool,
    the in-process inline runner and the socket worker of
    :mod:`repro.engine.distributed.worker` all execute batches through
    :meth:`run_batch` on one instance, so transport never changes what
    a batch computes.  ``kernel_tier`` records which graph-kernel tier
    this worker actually runs (it may be a degraded tier when the
    payload named ``native`` but the extension is unavailable here);
    every batch's statistics delta counts itself under that tier, so a
    mixed-tier fleet is visible in the merged report.
    """

    def __init__(
        self, payload: GraphPayload, limits: BatchLimits | None = None
    ) -> None:
        self.graph, self._buffer = _rebuild_graph(payload)
        self.triangulator = get_triangulator(payload.triangulator)
        if _bitset is not None:
            self.kernel_tier = _bitset.core_backend_name(self.graph.core)
        else:
            self.kernel_tier = "indexed"
        self._watchdog = (
            ResourceWatchdog(limits)
            if limits is not None and limits.enabled
            else None
        )
        # Fault injection (tests, chaos soak): a separator mask whose
        # presence in any answer of a batch makes this worker fail it.
        self._poison_mask = 0
        self._poison_mode = "fail"
        # region mask → (region graph, SGR, mask → separator cache)
        self._regions: dict[
            int, tuple[Graph, MinimalSeparatorSGR, dict[int, frozenset]]
        ] = {}

    def set_poison(self, mask: int, mode: str = "fail") -> None:
        """Inject a deterministic poison batch (fault-injection only).

        Any batch containing ``mask`` in one of its answers is failed:
        ``mode="fail"`` aborts it cooperatively (the worker stays alive
        and reports a typed failure — the watchdog-breach path),
        ``mode="kill"`` terminates the whole process abruptly, like the
        OOM killer would.  Never set in production; the coordinator's
        serial quarantine fallback uses a fresh WorkerState on which
        this is never called, which is what makes salvage converge.
        """
        if mode not in ("fail", "kill"):
            raise EngineError(f"poison mode must be fail|kill, got {mode!r}")
        self._poison_mask = mask
        self._poison_mode = mode

    def _region(
        self, region_mask: int
    ) -> tuple[Graph, MinimalSeparatorSGR, dict[int, frozenset]]:
        entry = self._regions.get(region_mask)
        if entry is None:
            if region_mask == self.graph.core.alive:
                region = self.graph
            else:
                region = self.graph.subgraph(
                    self.graph.label_set(region_mask)
                )
            sgr = MinimalSeparatorSGR(region, self.triangulator)
            entry = (region, sgr, {})
            self._regions[region_mask] = entry
        return entry

    def _execute(
        self,
        region_mask: int,
        jobs: "list[TaskJob]",
        stats: EnumMISStatistics,
    ) -> list[tuple[int, ...]]:
        region, sgr, separator_of = self._region(region_mask)
        sgr.attach_statistics(stats)
        has_edges_batch = sgr.has_edges_batch
        label_set = region.label_set
        mask_of = region.mask_of
        clock = time.perf_counter_ns
        watchdog = self._watchdog
        out: list[tuple[int, ...]] = []
        for answer_masks, direction_masks in jobs:
            answer = []
            for mask in answer_masks:
                separator = separator_of.get(mask)
                if separator is None:
                    separator = label_set(mask)
                    separator_of[mask] = separator
                answer.append(separator)
            for v_mask in direction_masks:
                # Cooperative abort point: the watchdog bounds a batch
                # at (answer, direction)-pair granularity — one pair
                # that never returns is the transport batch-timeout's
                # problem, a batch that is too big/leaky is caught here.
                if watchdog is not None:
                    watchdog.check()
                v = separator_of.get(v_mask)
                if v is None:
                    v = label_set(v_mask)
                    separator_of[v_mask] = v
                started = clock()
                crossed = has_edges_batch(v, answer)
                stats.crossing_time_ns += clock() - started
                stats.edge_oracle_calls += len(answer)
                kept = {u for u, edge in zip(answer, crossed) if not edge}
                kept.add(v)
                stats.extend_calls += 1
                started = clock()
                extended = sgr.extend(frozenset(kept))
                stats.extend_time_ns += clock() - started
                out.append(
                    tuple(sorted(mask_of(sep) for sep in extended))
                )
        return out

    def run_batch(self, batch) -> "BatchResult | object":
        """Execute one batch in either wire format.

        Packed batches answer in kind (so the result pickles small);
        legacy tuples answer with an ``(answers, stats, compute_ns)``
        triple.  Both carry the worker's measured batch compute time,
        which the coordinator subtracts from the observed round-trip
        to meter pure IPC.
        """
        stats = EnumMISStatistics()
        stats.kernel_tiers[self.kernel_tier] = 1
        started = time.perf_counter_ns()
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.arm()
        try:
            if _wire is not None and isinstance(batch, _wire.PackedBatch):
                region_mask, answers, directions = _wire.decode_batch(batch)
                jobs = [(answer, directions) for answer in answers]
            else:
                region_mask, jobs = batch
                answers = [answer_masks for answer_masks, __ in jobs]
            self._check_poison(answers, started)
            out = self._execute(region_mask, jobs, stats)
            if _wire is not None and isinstance(batch, _wire.PackedBatch):
                return _wire.encode_result(
                    out,
                    batch.words,
                    time.perf_counter_ns() - started,
                    stats,
                )
            return out, stats, time.perf_counter_ns() - started
        except BatchAbortedError:
            # Free the scratch state the runaway batch grew (separator
            # interns, crossing caches): the worker survives the abort
            # and must return to a small footprint before its next
            # batch, or an RSS breach would recur on healthy work.
            self._regions.clear()
            raise
        finally:
            if watchdog is not None:
                watchdog.disarm()

    def _check_poison(self, answers, started_ns: int) -> None:
        mask = self._poison_mask
        if not mask or not any(mask in answer for answer in answers):
            return
        if self._poison_mode == "kill":
            # Simulate the OOM killer: no unwind, no goodbye — the
            # transport sees a dead process/connection.
            os._exit(137)
        raise BatchAbortedError(
            "poison",
            (time.perf_counter_ns() - started_ns) / 1e9,
            current_rss_bytes(),
        )


#: Back-compat alias (the class predates the socket worker extraction).
_WorkerState = WorkerState

_WORKER_STATE: WorkerState | None = None


def poison_from_env() -> tuple[int, str] | None:
    """Read the fault-injection poison spec from the environment.

    ``REPRO_CHAOS_POISON`` is a separator mask (any int literal);
    ``REPRO_CHAOS_POISON_MODE`` is ``fail`` (cooperative abort, the
    default) or ``kill`` (abrupt process death).  Returns ``None`` when
    unset/unparseable — fault injection must never break a real run.
    """
    raw = os.environ.get("REPRO_CHAOS_POISON")
    if not raw:
        return None
    try:
        mask = int(raw, 0)
    except ValueError:
        return None
    mode = os.environ.get("REPRO_CHAOS_POISON_MODE", "fail")
    return mask, (mode if mode in ("fail", "kill") else "fail")


def _init_worker(
    payload: GraphPayload, limits: BatchLimits | None = None
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = WorkerState(payload, limits=limits)
    poison = poison_from_env()
    if poison is not None:
        _WORKER_STATE.set_poison(*poison)


def _run_batch(batch):
    assert _WORKER_STATE is not None, "worker initializer did not run"
    try:
        return _WORKER_STATE.run_batch(batch)
    except BatchAbortedError as exc:
        # A cooperative abort travels as a *value*: the worker process
        # stays warm in the pool and the failure path pickles the same
        # report a socket worker sends in its BATCH_FAILED frame.
        return BatchFailure(exc.reason, exc.elapsed_s, exc.peak_rss)


class InlineRunner:
    """Synchronous runner: tasks execute immediately in this process.

    Uses the legacy tuple wire format — nothing crosses a process
    boundary, so interning and packing would be pure overhead.
    """

    workers = 1
    wire_format = "plain"

    def __init__(self, payload: GraphPayload) -> None:
        self._state = WorkerState(payload)

    def submit(self, batch: TaskBatch) -> "Future[BatchResult]":
        future: Future = Future()
        try:
            future.set_result(self._state.run_batch(batch))
        except BaseException as exc:  # surfaced via future.result()
            future.set_exception(exc)
        return future

    def close(self) -> None:
        pass


class PoolRunner:
    """Runner backed by a ``ProcessPoolExecutor`` of warm workers.

    Owns the shared-memory graph segment: the inline payload is
    promoted to a :class:`~repro.graph.bitset_np.SharedPackedBuffer`
    before the pool starts, and the segment is unlinked exactly once in
    :meth:`close` — which the coordinator assembly calls on normal
    exhaustion, generator close, ``KeyboardInterrupt`` and worker-crash
    unwind alike.  A worker killed outside Python leaves only its own
    mapping behind, which the kernel reclaims with the process.
    """

    wire_format = "plain"

    def __init__(
        self,
        payload: GraphPayload,
        workers: int,
        limits: BatchLimits | None = None,
    ) -> None:
        if workers < 1:
            raise EngineError("sharded execution needs at least 1 worker")
        self.workers = workers
        self._limits = limits
        self._buffer = None
        if _bitset is not None and payload.packed is not None:
            import numpy as np

            matrix = np.frombuffer(
                payload.packed, dtype=np.dtype("<u8")
            ).reshape(payload.rows, payload.words)
            self._buffer = _bitset.SharedPackedBuffer.create(matrix)
            payload = replace(
                payload, packed=None, shm_name=self._buffer.name
            )
            self.wire_format = "packed"
        self._payload = payload
        try:
            self._executor = self._spawn()
        except Exception as exc:  # pragma: no cover - platform-specific
            self._release_buffer()
            raise EngineError(
                f"could not start worker pool ({exc}); custom "
                "triangulators must be picklable to shard"
            ) from exc

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self._payload, self._limits),
        )

    def restart(self) -> None:
        """Replace a broken executor after a hard worker death.

        ``BrokenProcessPool`` condemns the whole executor even though
        only one process died; the coordinator's quarantine policy
        calls this, then re-drives the in-flight batches through its
        retry/split/quarantine ladder.  The shared-memory graph
        segment is untouched — the fresh workers re-attach to it.

        Idempotent per break: one dead worker fails *every* in-flight
        future with ``BrokenProcessPool`` at once, and each failure
        triggers a recovery attempt — only the first may respawn, or
        one death would fork ``inflight`` fresh pools.
        """
        if not getattr(self._executor, "_broken", True):
            return  # already replaced by an earlier failure of this wave
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._executor = self._spawn()

    def _release_buffer(self) -> None:
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            buffer.unlink()

    def submit(self, batch) -> "Future":
        return self._executor.submit(_run_batch, batch)

    def close(self) -> None:
        try:
            self._executor.shutdown(wait=True, cancel_futures=True)
        finally:
            self._release_buffer()
