"""The engine front-end: budgets, timing and result assembly."""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterator

from repro.core.triangulation import Triangulation
from repro.engine.base import EnumerationBackend, get_backend
from repro.engine.job import EnumerationJob
from repro.engine.result import AnswerRecord, EnumerationResult
from repro.graph import resolve_graph_backend
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["EnumerationEngine"]


class EnumerationEngine:
    """Dispatch enumeration jobs to a pluggable backend.

    Parameters
    ----------
    backend:
        Registry name (``"serial"``, ``"sharded"``) or an
        :class:`~repro.engine.base.EnumerationBackend` instance.
    workers:
        Worker-pool size for parallel backends; overrides the job's
        ``workers`` hint when given.

    Examples
    --------
    >>> from repro.engine import EnumerationEngine, EnumerationJob
    >>> from repro.graph.generators import gnp_random_graph
    >>> graph = gnp_random_graph(12, 0.4, seed=5)
    >>> job = EnumerationJob(graph, max_results=10)
    >>> result = EnumerationEngine("serial").run(job)
    >>> result.count
    10
    """

    def __init__(
        self,
        backend: str | EnumerationBackend = "serial",
        workers: int | None = None,
    ) -> None:
        self._backend = get_backend(backend)
        self._workers = workers

    @property
    def backend_name(self) -> str:
        """The resolved backend's registry name."""
        return self._backend.name

    @property
    def workers(self) -> int | None:
        """The engine-level worker count override (``None`` = job/auto)."""
        return self._workers

    def stream(
        self,
        job: EnumerationJob,
        stats: EnumMISStatistics | None = None,
    ) -> Iterator[Triangulation]:
        """Lazily enumerate ``job``, enforcing its budgets.

        The stream stops after ``job.max_results`` answers or once
        ``job.time_budget`` seconds have elapsed (checked after each
        answer).  Closing the stream releases backend resources — the
        worker pool *and* the shared-memory graph segment a sharded run
        mapped for its workers — and, for checkpointed jobs, persists
        the final (Q, P, V) state (stage timers included) so an
        interrupted consumer can resume with ``job.resume=True``.
        Always close the stream (or drain it): an abandoned sharded
        stream holds its segment until garbage collection.
        """
        job.validate()
        if stats is None:
            stats = EnumMISStatistics()
        # Resolve the graph-core backend once, up front: every execution
        # backend then sees the selected representation (workers too —
        # the pool payload records the core class).  Conversion keeps
        # the interner, so masks are interchangeable between cores and
        # checkpoint fingerprints (label/edge level) are unaffected.
        resolved = resolve_graph_backend(job.graph, job.graph_backend)
        if resolved is not job.graph:
            job = dataclasses.replace(job, graph=resolved)

        def generate() -> Iterator[Triangulation]:
            if job.max_results == 0:
                return
            start = time.monotonic()
            produced = 0
            source = self._backend.stream(job, stats, self._workers)
            try:
                for triangulation in source:
                    yield triangulation
                    produced += 1
                    if (
                        job.max_results is not None
                        and produced >= job.max_results
                    ):
                        break
                    if (
                        job.time_budget is not None
                        and time.monotonic() - start >= job.time_budget
                    ):
                        break
            finally:
                source.close()

        return generate()

    def run(self, job: EnumerationJob) -> EnumerationResult:
        """Execute ``job`` to completion (or budget) and collect results."""
        stats = EnumMISStatistics()
        result = EnumerationResult(
            backend=self.backend_name,
            workers=self._effective_workers(job),
            stats=stats,
        )
        start = time.monotonic()
        completed = job.max_results != 0
        stream = self.stream(job, stats)
        for index, triangulation in enumerate(stream):
            elapsed = time.monotonic() - start
            result.triangulations.append(triangulation)
            result.records.append(
                AnswerRecord(
                    index=index,
                    elapsed=elapsed,
                    width=triangulation.width,
                    fill=triangulation.fill,
                )
            )
            if job.max_results is not None and index + 1 >= job.max_results:
                completed = False
                break
            if job.time_budget is not None and elapsed >= job.time_budget:
                completed = False
                break
        result.elapsed = time.monotonic() - start
        result.completed = completed
        return result

    def _effective_workers(self, job: EnumerationJob) -> int:
        if self.backend_name != "sharded":
            return 1
        if self._workers is not None:
            return self._workers
        if job.workers is not None:
            return job.workers
        from repro.engine.pool import default_worker_count

        return default_worker_count()
