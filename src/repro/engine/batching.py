"""Cost-driven task sizing for the sharded coordinator.

The coordinator slices its work into batches twice: popped answers are
dispatched against the current V-snapshot, and every barrier re-examines
all processed answers in the direction of one new node.  How big those
batches should be is a pure throughput/latency trade:

* too small, and the run drowns in per-batch overhead — a pickle, a
  queue hop and a ``Future`` wake-up per handful of microseconds of
  compute (the recorded ``engine-pr2-sharded`` baseline lost ~38 % of
  its wall clock to exactly this);
* too big, and workers idle at the tail of every dispatch wave,
  answers sit unyielded inside running tasks, and an interrupt
  re-queues (loses the progress of) everything in flight.

The static heuristics this module replaces sized batches by queue
length alone, but the right size depends on how expensive one unit of
work *is* — which varies by graph, triangulator and stage, and drifts
as the enumeration warms its caches.  :class:`AdaptiveBatcher` instead
*measures*: every completed batch reports its compute time and its pair
count ((answer, direction) pairs — each pair is one edge-oracle sweep
plus one ``Extend``), an exponentially-weighted moving average tracks
the per-pair cost, and batches are sized so one batch takes roughly
``target_ms`` of worker compute (default 100 ms — comfortably above
per-batch overhead, comfortably below human-visible latency).  A
stealable-work cap keeps a batch from swallowing a queue share another
worker could be running, whatever the target says.

The batcher is also the coordinator's clock (``clock`` is injectable,
so tests drive sizing decisions deterministically without wall-time
sleeps).  It holds no reporting state of its own: the IPC/latency/byte
accounting lives on the run's
:class:`~repro.sgr.enum_mis.EnumMISStatistics`, incremented by the
coordinator right where it feeds this cost model — one source of
truth, nothing to drift apart across checkpoint restores.

Any sizing policy is *correct* — the EnumMIS proof is agnostic to how Q
is drained, and every batch is re-queued wholesale on interrupt — so
this module only ever trades throughput, never answers.  CI pins that
by running the sharded backend with an aggressively tiny
``batch_target_ms`` against the serial reference.
"""

from __future__ import annotations

import time
from collections.abc import Callable

__all__ = ["AdaptiveBatcher", "DEFAULT_BATCH_TARGET_MS"]

#: Default worker-compute duration one batch is sized to hit.
DEFAULT_BATCH_TARGET_MS = 100.0

#: Hard per-batch answer caps: whatever the cost model says, a pop
#: batch never exceeds this many answers …
_MAX_POP_CHUNK = 1024
#: … and a barrier chunk never exceeds this many (barrier pairs carry
#: a single direction each, so chunks run much larger).
_MAX_BARRIER_CHUNK = 4096

#: EWMA smoothing factor: one observation moves the estimate a quarter
#: of the way — reactive enough to follow cache warm-up, damped enough
#: that one outlier batch cannot collapse or explode the next size.
_ALPHA = 0.25

#: Floor for the per-pair cost estimate.  A batch that completes below
#: timer resolution would otherwise drive the estimate to ~0 and the
#: next batch size to infinity.
_MIN_PAIR_NS = 1.0


class AdaptiveBatcher:
    """Size task batches to a target duration from observed costs.

    Parameters
    ----------
    workers:
        The pool size batches are spread across (1 for the inline
        runner).
    target_ms:
        Compute duration one batch should take.  Smaller values mean
        finer-grained stealing, cheaper interrupts and fresher
        V-snapshots at the price of more per-batch overhead.
    clock:
        Nanosecond monotonic clock; injectable for deterministic tests.
    """

    __slots__ = (
        "workers",
        "target_ns",
        "_clock",
        "_pair_cost_ns",
    )

    def __init__(
        self,
        workers: int,
        target_ms: float = DEFAULT_BATCH_TARGET_MS,
        clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        if target_ms <= 0:
            raise ValueError(f"target_ms must be positive, got {target_ms}")
        self.workers = max(1, workers)
        self.target_ns = target_ms * 1e6
        self._clock = clock
        self._pair_cost_ns: float | None = None

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def now(self) -> int:
        """The batcher's clock (coordinators timestamp dispatches with it)."""
        return self._clock()

    def observe(self, pairs: int, compute_ns: int) -> None:
        """Fold one completed batch into the cost model.

        ``pairs`` is the batch's (answer, direction) pair count and
        ``compute_ns`` the worker-side wall time spent executing it.
        """
        if pairs > 0:
            per_pair = max(compute_ns / pairs, _MIN_PAIR_NS)
            if self._pair_cost_ns is None:
                self._pair_cost_ns = per_pair
            else:
                self._pair_cost_ns += _ALPHA * (per_pair - self._pair_cost_ns)

    @property
    def pair_cost_ns(self) -> float | None:
        """EWMA compute cost of one (answer, direction) pair, or None."""
        return self._pair_cost_ns

    # ------------------------------------------------------------------
    # Sizing policy
    # ------------------------------------------------------------------

    def _target_answers(self, pairs_per_answer: int, cap: int) -> int:
        assert self._pair_cost_ns is not None
        per_answer = self._pair_cost_ns * max(1, pairs_per_answer)
        return max(1, min(cap, int(self.target_ns / per_answer)))

    def _stealable_cap(self, chunk: int, available: int) -> int:
        """Never let one batch swallow a share another worker could run."""
        if self.workers > 1:
            share = -(-available // self.workers)  # ceil
            chunk = min(chunk, max(1, share))
        return max(1, min(chunk, available))

    def pop_chunk_size(self, queued: int, directions: int) -> int:
        """Answers per dispatched pop batch.

        Each answer costs ``directions`` pairs (it is examined against
        the whole V-snapshot).  Before the first observation there is
        nothing to extrapolate from, so a deliberately small bootstrap
        size is used — the resulting measurement immediately replaces
        it.
        """
        if self._pair_cost_ns is None:
            bootstrap = 1 if self.workers <= 1 else max(
                1, min(16, queued // (2 * self.workers) or 1)
            )
            return min(bootstrap, max(1, queued))
        chunk = self._target_answers(directions, _MAX_POP_CHUNK)
        return self._stealable_cap(chunk, queued)

    def barrier_chunk_size(self, total: int) -> int:
        """Answers per barrier chunk (one direction pair per answer)."""
        if self._pair_cost_ns is None:
            return max(1, min(32, -(-total // (4 * self.workers))))
        chunk = self._target_answers(1, _MAX_BARRIER_CHUNK)
        return self._stealable_cap(chunk, total)

    def max_inflight(self) -> int:
        """Batches allowed in flight at once.

        Three per worker: one running, one queued behind it (so a
        worker never idles waiting for the coordinator's next dispatch
        round), one in transit — the same pipelining depth the static
        policy used, now owned by the policy object.
        """
        return 1 if self.workers <= 1 else self.workers * 3
