"""The enumeration job spec: one fully-described unit of engine work.

An :class:`EnumerationJob` captures everything a backend needs to
enumerate the minimal triangulations of a graph — the input, the
EnumMIS printing mode, the ``Extend`` heuristic, decomposition and
ranking options, answer/time budgets, and checkpointing — so that the
same spec can be handed to any backend (serial today, sharded across a
worker pool, future bulk backends) and produce the same answer set.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.chordal.triangulate import Triangulator
from repro.core.triangulation import Triangulation
from repro.engine.base import EngineError
from repro.engine.batching import DEFAULT_BATCH_TARGET_MS
from repro.graph.graph import Graph

__all__ = ["EnumerationJob"]

CostFunction = Callable[[Triangulation], object]

_MODES = {"UG", "UP"}
_DECOMPOSE = {"none", "components", "atoms"}
_GRAPH_BACKENDS = {"auto", "indexed", "numpy", "native"}


@dataclass
class EnumerationJob:
    """A self-contained description of one enumeration run.

    Parameters
    ----------
    graph:
        The input graph (connected or not).
    mode:
        EnumMIS printing discipline: ``"UG"`` (yield upon generation,
        the default) or ``"UP"`` (yield upon pop).  Ranked jobs always
        run ``"UP"`` regardless of this field, mirroring
        :mod:`repro.core.ranked`.
    triangulator:
        Heuristic plugged into ``Extend`` — a registry name or a
        :class:`~repro.chordal.triangulate.Triangulator` instance.
        The sharded backend ships the heuristic to worker processes, so
        custom instances must be picklable (registry names always are).
    decompose:
        ``"components"`` (default), ``"atoms"`` or ``"none"`` — how the
        input is split before enumeration, as in
        :func:`repro.core.enumerate.enumerate_minimal_triangulations`.
    cost:
        Optional ranking: ``"width"``, ``"fill"`` or a callable mapping
        a Triangulation to a sortable key.  When set, the answer queue
        is drained best-first.
    max_results / time_budget:
        Answer-count and wall-clock budgets, enforced by the engine.
        ``None`` means unbounded.
    checkpoint_path:
        When set, the backend periodically persists its (Q, P, V) state
        to this file so an interrupted enumeration can be resumed; see
        :mod:`repro.engine.checkpoint`.  Jobs whose graph decomposes
        into several regions (disconnected inputs, ``decompose="atoms"``)
        persist one section per region plus the cross-region product
        state, so they round-trip exactly like connected jobs.
    checkpoint_every:
        Save the checkpoint after this many newly generated answers
        (plus once on stream close).
    resume:
        When True and ``checkpoint_path`` exists, restore (Q, P, V)
        from it instead of starting fresh; answers already yielded by
        the interrupted run are not yielded again.
    workers:
        Worker-pool size hint for parallel backends; ``None`` lets the
        backend choose (``os.cpu_count()`` for ``sharded``).
    batch_target_ms:
        Worker-compute duration one sharded task batch is sized to
        take (milliseconds).  The coordinator's
        :class:`~repro.engine.batching.AdaptiveBatcher` learns the
        per-(answer, direction)-pair extend cost from completed
        batches and sizes the next batch to this target — lower values
        mean finer-grained work stealing, cheaper interrupts and
        fresher V-snapshots; higher values amortise more per-batch IPC
        overhead.  Any value enumerates the same answer set.
    max_batch_retries:
        How many times one failed extend batch may be redispatched
        (worker death, cooperative watchdog abort) before the
        coordinator splits it in half and finally quarantines it —
        re-driving the surviving (answer, direction) pairs serially
        under a hard budget.  The distributed transport uses the same
        budget for its connection-level requeues.
    batch_deadline_s / batch_rss_limit_mb:
        Per-batch resource ceilings enforced *inside* each worker by
        the cooperative resource watchdog (wall-clock seconds / RSS in
        MiB).  ``None`` disables the corresponding check; when both are
        unset no watchdog is armed.  A breached batch fails typed — the
        worker survives — and enters the retry/split/quarantine ladder.
    graph_backend:
        Graph-core representation: ``"indexed"`` (single-int bitmasks),
        ``"numpy"`` (packed uint64 word matrices for batch sweeps),
        ``"native"`` (the same word matrices dispatched to the compiled
        C kernels, degrading to numpy when the extension cannot be
        built) or ``"auto"`` (default — the packed tier at or above
        :data:`repro.graph.bitset_np.NUMPY_THRESHOLD` nodes, preferring
        native when available).  Resolved once by the engine before
        backend dispatch, so every execution backend — including
        sharded workers, via the graph payload — runs on the selected
        core transparently.
    """

    graph: Graph
    mode: str = "UG"
    triangulator: str | Triangulator = "mcs_m"
    decompose: str = "components"
    cost: str | CostFunction | None = None
    max_results: int | None = None
    time_budget: float | None = None
    checkpoint_path: str | Path | None = None
    checkpoint_every: int = 64
    resume: bool = False
    workers: int | None = field(default=None)
    batch_target_ms: float = DEFAULT_BATCH_TARGET_MS
    graph_backend: str = "auto"
    max_batch_retries: int = 3
    batch_deadline_s: float | None = None
    batch_rss_limit_mb: float | None = None

    def validate(self) -> None:
        """Raise :class:`EngineError` on an inconsistent spec."""
        if self.mode not in _MODES:
            raise EngineError(
                f"mode must be one of {sorted(_MODES)}, got {self.mode!r}"
            )
        if self.decompose not in _DECOMPOSE:
            raise EngineError(
                f"decompose must be one of {sorted(_DECOMPOSE)}, "
                f"got {self.decompose!r}"
            )
        if self.max_results is not None and self.max_results < 0:
            raise EngineError("max_results must be >= 0")
        if self.time_budget is not None and self.time_budget < 0:
            raise EngineError("time_budget must be >= 0")
        if self.checkpoint_every <= 0:
            raise EngineError("checkpoint_every must be positive")
        if self.workers is not None and self.workers < 0:
            raise EngineError("workers must be >= 0")
        if self.batch_target_ms <= 0:
            raise EngineError("batch_target_ms must be positive")
        if self.resume and self.checkpoint_path is None:
            raise EngineError("resume=True requires checkpoint_path")
        if self.max_batch_retries < 0:
            raise EngineError("max_batch_retries must be >= 0")
        if self.batch_deadline_s is not None and self.batch_deadline_s <= 0:
            raise EngineError("batch_deadline_s must be positive")
        if (
            self.batch_rss_limit_mb is not None
            and self.batch_rss_limit_mb <= 0
        ):
            raise EngineError("batch_rss_limit_mb must be positive")
        if self.graph_backend not in _GRAPH_BACKENDS:
            raise EngineError(
                f"graph_backend must be one of {sorted(_GRAPH_BACKENDS)}, "
                f"got {self.graph_backend!r}"
            )

    @property
    def effective_mode(self) -> str:
        """The EnumMIS discipline actually used (ranked jobs force UP)."""
        return "UP" if self.cost is not None else self.mode

    def triangulator_name(self) -> str:
        """A printable name for the heuristic (for reports/checkpoints)."""
        if isinstance(self.triangulator, str):
            return self.triangulator
        return self.triangulator.name
