"""Backend protocol and registry of the enumeration engine.

A *backend* is a strategy for executing one
:class:`~repro.engine.job.EnumerationJob`: it turns the job into a lazy
stream of :class:`~repro.core.triangulation.Triangulation` objects
while folding its counters into a caller-supplied
:class:`~repro.sgr.enum_mis.EnumMISStatistics`.  Backends register
themselves by name, so new execution strategies (a numpy/CSR bulk
backend, a distributed one, …) plug in without touching the engine or
any caller — exactly like the triangulator registry one layer below.

Shipped backends:

* ``serial``  — the single-process EnumMIS pipeline (today's
  :func:`repro.core.enumerate.enumerate_minimal_triangulations`);
* ``sharded`` — the answer queue Q partitioned across a
  multiprocessing worker pool (see :mod:`repro.engine.sharded`).
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.triangulation import Triangulation
    from repro.engine.job import EnumerationJob
    from repro.sgr.enum_mis import EnumMISStatistics

__all__ = [
    "EngineError",
    "WireDecodeError",
    "BatchFailedError",
    "EnumerationBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]


class EngineError(RuntimeError):
    """An enumeration job could not be executed as specified."""


class WireDecodeError(EngineError):
    """Bytes on the wire do not form a valid message.

    Raised by every decoder that handles untrusted input — the packed
    batch/result serialisations of :mod:`repro.engine.wire` and the
    framed TCP protocol of :mod:`repro.engine.distributed.protocol` —
    instead of leaking IndexError/ValueError from malformed, truncated
    or adversarial bytes.  Defined here (not in ``wire``) so the
    numpy-free protocol layer can raise it without importing numpy.
    """


class BatchFailedError(EngineError):
    """One dispatched batch could not be executed by any worker.

    Raised through the batch's ``Future`` by a transport (the
    distributed runner) once a batch has burned its retry budget —
    every requeue caused by a *failure* (owner death, batch timeout, or
    a typed BATCH_FAILED cooperative abort) counts against
    ``max_batch_retries``.  The coordinator catches it and applies the
    quarantine policy (split-in-half once, then serial fallback)
    instead of letting one poison batch kill the run.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "failed",
        exhausted: bool = False,
    ) -> None:
        super().__init__(message)
        #: Machine-readable failure class (``"worker lost"``,
        #: ``"deadline"``, ``"rss"``, ``"poison"``, …).
        self.reason = reason
        #: True when the transport already retried this batch
        #: ``max_batch_retries`` times; the coordinator must not
        #: redispatch it as-is.
        self.exhausted = exhausted


class EnumerationBackend(abc.ABC):
    """One execution strategy for enumeration jobs."""

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    @abc.abstractmethod
    def stream(
        self,
        job: "EnumerationJob",
        stats: "EnumMISStatistics",
        workers: int | None,
    ) -> Iterator["Triangulation"]:
        """Lazily enumerate the job's minimal triangulations.

        Implementations must yield every minimal triangulation exactly
        once (budgets are enforced by the engine, not the backend),
        update ``stats`` in place — including counters contributed by
        worker processes — and release any pools or file handles when
        the generator is closed.  ``workers`` is the engine-level
        worker count; backends that do not parallelise ignore it.
        """


_REGISTRY: dict[str, EnumerationBackend] = {}


def register_backend(backend: EnumerationBackend) -> None:
    """Register ``backend`` under ``backend.name`` (replacing any previous)."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend


def get_backend(name: str | EnumerationBackend) -> EnumerationBackend:
    """Resolve a backend name (identity on backend instances)."""
    if isinstance(name, EnumerationBackend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise EngineError(
            f"unknown enumeration backend {name!r} (known: {known})"
        ) from None


def available_backends() -> list[str]:
    """Return the names of all registered backends."""
    return sorted(_REGISTRY)
