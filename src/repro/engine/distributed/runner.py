"""Coordinator-side transport: the asyncio TCP batch runner.

:class:`DistributedRunner` implements the same surface the sharded
coordinator already drives — ``submit(batch) → Future``, ``workers``,
``wire_format``, ``close()`` — so
:func:`repro.engine.sharded.coordinated_stream` (and with it
checkpointing, multi-region products, adaptive batching and the whole
(Q, P, V) control discipline) runs over TCP unchanged.  The runner owns
an asyncio event loop on a background thread; ``submit`` hands the
encoded batch across with ``call_soon_threadsafe`` and returns a
``concurrent.futures.Future`` the coordinator waits on exactly as it
waits on process-pool futures.

Elastic membership
------------------
Workers may connect and disconnect at any point of the job.  A new
connection is handshaken (protocol version, wire format, graph
fingerprint, kernel tier), shipped the packed adjacency once, and
immediately pulls from the shared dispatch queue.  Nothing requires a
worker at job start: batches simply wait in the pending queue until a
host joins (``pending_timeout_s`` bounds that wait when set, failing
the in-flight futures with a typed error instead of hanging forever).

Fault-tolerant requeue (exactly-once), bounded by a retry budget
----------------------------------------------------------------
Each dispatched batch is owned by exactly one connection.  When a
connection dies — EOF/reset from a SIGKILLed worker, a missed
heartbeat window, or a per-batch timeout — every unresolved batch it
owned is requeued at the *front* of the pending queue and re-dispatched
to a surviving (or future) worker.  Exactly-once delivery to the
coordinator is enforced by batch id: the first result to arrive
resolves the future and retires the id, and any late duplicate — a
result already in the read buffer when its batch was requeued for
timeout, say — is dropped on the floor.  This is the transport-level
generalisation of the checkpoint-v2 discipline the in-process
coordinator already applies (in-flight answers are requeued, never
recorded as processed), so a worker loss costs recomputation, never
answers.  Coordinator restart is the checkpoint document's job: a
resumed job builds a fresh runner, reconnecting workers re-handshake
against the same graph fingerprint, and the (Q, P, V) restore requeues
whatever was in flight when the coordinator died.

Unbounded requeue turns a *poison* batch — one that deterministically
OOMs or wedges every worker it touches — into a fleet-killing loop:
dispatch, death, requeue-to-front, repeat.  Every failure-driven
requeue therefore counts against the batch's ``max_batch_retries``
budget (owner death and typed ``BATCH_FAILED`` cooperative aborts
alike); a batch that exhausts it has its future failed with a typed
:class:`~repro.engine.base.BatchFailedError` instead of being requeued
again, and the coordinator's quarantine policy (split in half once,
then re-drive serially in-process) takes over — one bad batch degrades
gracefully instead of taking the fleet down.

Fleet events are folded into the run statistics (``worker_joins``,
``worker_losses``, ``batches_requeued``, ``batch_retries``,
``protocol_rejections``), so a run report shows the membership churn
next to the timings it explains.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future

from repro.engine import wire
from repro.engine.base import BatchFailedError, EngineError
from repro.engine.distributed import protocol
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["DistributedRunner", "validate_liveness_config"]

#: Batches one connection may own at once (one running, one queued
#: behind it, one in transit — the pool runner's pipelining depth).
_PER_CONNECTION = 3

#: Heartbeat windows a connection may miss before it is declared dead.
#: Canonically defined in the (numpy-free) protocol module so backend
#: construction can validate liveness settings without importing this
#: module; re-exported here for the runner's own callers.
_LIVENESS_WINDOWS = protocol.DEFAULT_LIVENESS_WINDOWS

_HANDSHAKE_TIMEOUT_S = 10.0

#: How long shutdown waits for workers to close their end after the
#: SHUTDOWN broadcast before force-closing the sockets.
_SHUTDOWN_LINGER_S = 5.0

_DEBUG = bool(os.environ.get("REPRO_DIST_DEBUG"))


def _dbg(msg: str) -> None:
    if _DEBUG:
        print(f"[coord {time.monotonic():.4f}] {msg}", file=sys.stderr, flush=True)


def _log(msg: str) -> None:
    print(f"[repro-coordinator] {msg}", file=sys.stderr, flush=True)


validate_liveness_config = protocol.validate_liveness_config


class _Connection:
    """One connected worker: socket streams + ownership bookkeeping."""

    __slots__ = (
        "reader",
        "writer",
        "name",
        "tier",
        "last_seen",
        "inflight",
        "closed",
    )

    def __init__(self, reader, writer, name: str, tier: str, now: float):
        self.reader = reader
        self.writer = writer
        self.name = name
        self.tier = tier
        self.last_seen = now
        self.inflight: dict[int, _Batch] = {}
        self.closed = False


class _Batch:
    """One submitted batch: its encoded frame and its future."""

    __slots__ = (
        "batch_id",
        "data",
        "future",
        "conn",
        "dispatched_at",
        "attempts",
        "failures",
    )

    def __init__(self, batch_id: int, data: bytes, future: Future):
        self.batch_id = batch_id
        self.data = data
        self.future = future
        self.conn: _Connection | None = None
        self.dispatched_at = 0.0
        self.attempts = 0
        #: Failure-driven requeues burned so far (owner death, batch
        #: timeout, BATCH_FAILED); capped by max_batch_retries.
        self.failures = 0


class DistributedRunner:
    """Asyncio TCP transport behind the ``submit(batch) → Future`` surface.

    Parameters
    ----------
    payload:
        The job's graph payload (must be packed — numpy on both ends).
    listen:
        ``(host, port)`` to bind; port 0 picks a free port, the bound
        address is exposed as :attr:`address`.
    expected_workers:
        Fleet size the adaptive batcher sizes for.  Membership is
        elastic regardless: fewer workers just drain slower, more share
        the queue as they join.
    heartbeat_s / batch_timeout_s:
        Liveness cadence, and the per-batch wall-clock bound after
        which a silent worker is declared stuck and its batches
        requeued elsewhere.
    pending_timeout_s:
        When set, how long batches may sit pending with *no* worker
        connected before the run fails with :class:`EngineError`
        (``None`` waits indefinitely — fully elastic).  Must exceed
        ``heartbeat_s`` — the sweeper that enforces it ticks once per
        heartbeat.
    max_batch_retries:
        Failure-driven requeues one batch may burn (owner death, batch
        timeout, typed BATCH_FAILED abort) before its future is failed
        with :class:`~repro.engine.base.BatchFailedError` and the
        coordinator's quarantine policy takes over.
    liveness_windows:
        Heartbeat intervals a connection may go silent before it is
        declared dead (the miss threshold).
    stats:
        The run's statistics; fleet events are counted on it.
    on_listening:
        Callback invoked with the bound ``(host, port)`` once the
        server accepts connections (tests and benchmarks use it to
        launch workers against an ephemeral port).
    wait_for_workers_s:
        When set, block construction until ``expected_workers`` have
        joined or the wait times out (the run then proceeds with
        whatever joined — useful to keep fleet spin-up out of a
        benchmark's measured window).
    """

    wire_format = "packed"

    def __init__(
        self,
        payload,
        listen: tuple[str, int],
        *,
        expected_workers: int = 1,
        heartbeat_s: float = 2.0,
        batch_timeout_s: float = 300.0,
        pending_timeout_s: float | None = None,
        max_batch_retries: int = 3,
        liveness_windows: float = _LIVENESS_WINDOWS,
        stats: EnumMISStatistics | None = None,
        on_listening=None,
        wait_for_workers_s: float | None = None,
    ) -> None:
        if expected_workers < 1:
            raise EngineError(
                f"expected_workers must be >= 1, got {expected_workers}"
            )
        if batch_timeout_s <= 0:
            raise EngineError("batch_timeout_s must be positive")
        if max_batch_retries < 0:
            raise EngineError("max_batch_retries must be >= 0")
        validate_liveness_config(
            heartbeat_s, pending_timeout_s, liveness_windows
        )
        # Validates payload shape (packed, registry triangulator) and
        # label encodability before any socket exists.
        self._graph_frame = protocol.encode_graph_payload(payload)
        self._fingerprint = protocol.payload_fingerprint(self._graph_frame)
        self.workers = expected_workers
        self._heartbeat_s = heartbeat_s
        self._batch_timeout_s = batch_timeout_s
        self._pending_timeout_s = pending_timeout_s
        self._max_batch_retries = max_batch_retries
        self._liveness_windows = liveness_windows
        self._stats = stats if stats is not None else EnumMISStatistics()
        self._payload_tier = payload.backend
        # Hosts whose handshake was rejected — each is logged once, so
        # a mismatched build retrying does not flood the coordinator.
        self._rejected_hosts: set[str] = set()

        self._ids = itertools.count(1)
        self._closed = False
        # Loop-thread state -------------------------------------------------
        self._pending: deque[_Batch] = deque()
        self._live: dict[int, _Batch] = {}
        self._done: set[int] = set()
        self._connections: list[_Connection] = []
        self._no_worker_since: float | None = None
        self._server = None
        self._sweeper = None
        # Signalled whenever membership grows (for wait_for_workers).
        self._membership = threading.Condition()

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-distributed", daemon=True
        )
        self._thread.start()
        try:
            self.address = asyncio.run_coroutine_threadsafe(
                self._start(listen), self._loop
            ).result(timeout=_HANDSHAKE_TIMEOUT_S)
        except BaseException:
            self._stop_loop()
            raise
        if on_listening is not None:
            on_listening(self.address)
        if wait_for_workers_s is not None:
            self.wait_for_workers(expected_workers, wait_for_workers_s)

    # ------------------------------------------------------------------
    # Public surface (called from the coordinator thread)
    # ------------------------------------------------------------------

    @property
    def connected_workers(self) -> int:
        """Live connection count (snapshot; membership is elastic)."""
        return len(self._connections)

    def wait_for_workers(self, count: int, timeout_s: float) -> int:
        """Block until ``count`` workers are connected (or timeout).

        Returns the connected count at exit; never raises on timeout —
        membership is elastic, the job proceeds with whoever joined.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._membership:
            while len(self._connections) < count:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._membership.wait(remaining)
        return self.connected_workers

    def submit(self, batch) -> "Future":
        """Encode ``batch`` and enqueue it for the fleet; returns its future."""
        if self._closed:
            raise EngineError("distributed runner is closed")
        if not isinstance(batch, wire.PackedBatch):
            raise EngineError(
                "distributed runner only transports packed batches"
            )
        future: Future = Future()
        batch_id = next(self._ids)
        data = protocol.encode_frame(
            protocol.MSG_BATCH,
            protocol.pack_tagged(batch_id, wire.batch_to_bytes(batch)),
        )
        self._loop.call_soon_threadsafe(
            self._admit, _Batch(batch_id, data, future)
        )
        return future

    def close(self) -> None:
        """Tell workers the job is over, stop the loop, join the thread."""
        if self._closed:
            return
        self._closed = True
        _dbg("close() called")
        try:
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop
            ).result(timeout=_HANDSHAKE_TIMEOUT_S)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        finally:
            self._stop_loop()

    # ------------------------------------------------------------------
    # Event-loop lifecycle
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            for task in asyncio.all_tasks(self._loop):
                task.cancel()
            self._loop.run_until_complete(
                self._loop.shutdown_asyncgens()
            )
            self._loop.close()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=_HANDSHAKE_TIMEOUT_S)

    async def _start(self, listen: tuple[str, int]) -> tuple[str, int]:
        host, port = listen
        self._server = await asyncio.start_server(
            self._serve, host=host or None, port=port
        )
        self._sweeper = asyncio.ensure_future(self._sweep())
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _shutdown(self) -> None:
        _dbg(f"shutdown begin, conns={[c.name for c in self._connections]}")
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            try:
                conn.writer.write(
                    protocol.encode_frame(protocol.MSG_SHUTDOWN)
                )
                await conn.writer.drain()
                _dbg(f"SHUTDOWN sent to {conn.name}")
            except Exception as exc:
                _dbg(f"SHUTDOWN write to {conn.name} failed: {exc!r}")
        # Close handshake: keep reading until each worker closes its end
        # in response to the SHUTDOWN.  Closing first would race a
        # last-instant heartbeat sitting unread in our receive buffer —
        # the close then sends a TCP reset that destroys the SHUTDOWN
        # queued on the worker side, and the worker burns its whole
        # reconnect budget on a finished job.  Reading to EOF drains the
        # buffer, so no reset is ever generated.  The reader tasks
        # remove each connection from ``_connections`` when they see
        # EOF (see ``_drop``); stragglers are force-closed at the
        # deadline.
        deadline = self._loop.time() + _SHUTDOWN_LINGER_S
        while self._connections and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        _dbg(
            f"linger done, stragglers={[c.name for c in self._connections]}"
        )
        for conn in list(self._connections):
            await self._close_connection(conn)
        self._connections.clear()
        for entry in self._live.values():
            entry.future.cancel()
        self._live.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Dispatch (loop thread)
    # ------------------------------------------------------------------

    def _admit(self, entry: _Batch) -> None:
        self._live[entry.batch_id] = entry
        self._pending.append(entry)
        self._pump()

    def _pump(self) -> None:
        """Assign pending batches to the least-loaded live connections."""
        while self._pending:
            candidates = [
                conn
                for conn in self._connections
                if not conn.closed and len(conn.inflight) < _PER_CONNECTION
            ]
            if not candidates:
                break
            conn = min(candidates, key=lambda c: len(c.inflight))
            entry = self._pending.popleft()
            if entry.batch_id not in self._live:
                continue  # resolved while pending (late duplicate result)
            entry.conn = conn
            entry.dispatched_at = self._loop.time()
            entry.attempts += 1
            conn.inflight[entry.batch_id] = entry
            conn.writer.write(entry.data)
        if self._pending and not self._connections:
            if self._no_worker_since is None:
                self._no_worker_since = self._loop.time()
        else:
            self._no_worker_since = None

    def _requeue(self, conn: _Connection, reason: str) -> None:
        """Move a dead connection's unresolved batches back to pending.

        Every one of these requeues is failure-driven (the owner died
        under the batch), so each counts against the batch's retry
        budget; a batch over budget is failed typed instead — the
        poison-loop breaker.
        """
        entries = sorted(
            conn.inflight.values(), key=lambda e: e.dispatched_at
        )
        conn.inflight.clear()
        requeued = 0
        for entry in reversed(entries):
            entry.conn = None
            if entry.batch_id not in self._live:
                continue
            entry.failures += 1
            if entry.failures > self._max_batch_retries:
                self._fail_batch(entry, reason)
                continue
            self._pending.appendleft(entry)
            requeued += 1
        if requeued:
            self._stats.batches_requeued += requeued
            self._stats.batch_retries += requeued

    def _fail_batch(self, entry: _Batch, reason: str) -> None:
        """Retire a batch whose retry budget is exhausted, typed."""
        _dbg(
            f"batch {entry.batch_id} exhausted its retry budget "
            f"({entry.failures - 1} retries); failing typed ({reason})"
        )
        self._live.pop(entry.batch_id, None)
        self._done.add(entry.batch_id)
        if entry in self._pending:
            self._pending.remove(entry)
        if not entry.future.done():
            entry.future.set_exception(
                BatchFailedError(
                    f"batch failed {entry.failures} times "
                    f"(last: {reason}) and exhausted its "
                    f"{self._max_batch_retries}-retry budget",
                    reason=reason,
                    exhausted=True,
                )
            )

    async def _close_connection(self, conn: _Connection) -> None:
        conn.closed = True
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except Exception:
            pass

    def _drop(self, conn: _Connection, reason: str) -> None:
        """Unregister a connection and requeue everything it owned."""
        _dbg(
            f"drop {conn.name} reason={reason!r} closed={self._closed} "
            f"inflight={len(conn.inflight)}"
        )
        if conn not in self._connections:
            return
        if self._closed:
            # Teardown races the reader tasks: a connection going away
            # because *we* are closing is not a worker loss and must
            # not requeue abandoned batches.  Removing the connection
            # here tells ``_shutdown`` the worker has acknowledged the
            # SHUTDOWN by closing its end (the close handshake).
            conn.inflight.clear()
            conn.closed = True
            self._connections.remove(conn)
            asyncio.ensure_future(self._close_connection(conn))
            return
        self._connections.remove(conn)
        self._stats.worker_losses += 1
        self._requeue(conn, reason)
        asyncio.ensure_future(self._close_connection(conn))
        self._pump()

    # ------------------------------------------------------------------
    # Results (loop thread)
    # ------------------------------------------------------------------

    def _on_result(self, conn: _Connection, payload: bytes) -> None:
        batch_id, body = protocol.unpack_tagged(payload)
        entry = self._live.get(batch_id)
        if entry is None:
            # Late duplicate: the batch was requeued off a dead/stuck
            # connection and its re-execution already resolved.  The
            # id is retired, so the duplicate is dropped — exactly-once
            # towards the coordinator.
            return
        result = wire.result_from_bytes(body)  # WireDecodeError drops conn
        del self._live[batch_id]
        self._done.add(batch_id)
        conn.inflight.pop(batch_id, None)
        if entry.conn is not None and entry.conn is not conn:
            # The batch was requeued onto another connection but the
            # original owner answered first; release the other copy's
            # slot (its eventual result will be dropped as a duplicate).
            entry.conn.inflight.pop(batch_id, None)
        if entry in self._pending:
            self._pending.remove(entry)
        if not entry.future.cancelled():
            entry.future.set_result(result)
        self._pump()

    def _on_batch_failed(self, conn: _Connection, payload: bytes) -> None:
        """A worker cooperatively aborted a batch (watchdog/poison).

        The worker is *alive and healthy* — only the batch is suspect.
        The failure counts against the batch's retry budget exactly
        like an owner death, but the connection stays in the fleet.
        """
        batch_id, reason, elapsed_s, peak_rss = (
            protocol.decode_batch_failed(payload)
        )
        entry = conn.inflight.pop(batch_id, None)
        if entry is None or batch_id not in self._live:
            return  # late duplicate of an already-settled batch
        _dbg(
            f"batch {batch_id} failed on {conn.name}: {reason} "
            f"({elapsed_s:.1f}s, peak RSS {peak_rss})"
        )
        entry.conn = None
        entry.failures += 1
        if entry.failures > self._max_batch_retries:
            self._fail_batch(entry, reason)
        else:
            self._stats.batch_retries += 1
            self._pending.appendleft(entry)
        self._pump()

    # ------------------------------------------------------------------
    # Connection serving (loop thread)
    # ------------------------------------------------------------------

    async def _serve(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        name = f"{peer[0]}:{peer[1]}" if peer else "?"
        try:
            hello = await asyncio.wait_for(
                protocol.read_frame_async(reader), _HANDSHAKE_TIMEOUT_S
            )
            tier = self._handshake(hello)
        except (wire.WireDecodeError, EngineError) as exc:
            # A bad or mismatched worker build knocking: count it and
            # log the peer once, so the problem is diagnosable from the
            # coordinator side instead of only as the worker's exit 2.
            self._stats.protocol_rejections += 1
            host = peer[0] if peer else "?"
            if host not in self._rejected_hosts:
                self._rejected_hosts.add(host)
                _log(f"rejected worker handshake from {name}: {exc}")
            try:
                writer.write(
                    protocol.encode_frame(
                        protocol.MSG_ERROR,
                        protocol.encode_json(
                            {"error": str(exc), "fatal": True}
                        ),
                    )
                )
                await writer.drain()
            except Exception:
                pass
            writer.close()
            return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError, OSError):
            writer.close()
            return

        welcome = protocol.encode_json(
            {
                "magic": protocol.MAGIC,
                "protocol": protocol.PROTOCOL_VERSION,
                "wire_format": self.wire_format,
                "fingerprint": self._fingerprint,
                "kernel_tier": self._payload_tier,
                "heartbeat_s": self._heartbeat_s,
            }
        )
        conn = _Connection(reader, writer, name, tier, self._loop.time())
        try:
            writer.write(protocol.encode_frame(protocol.MSG_WELCOME, welcome))
            writer.write(
                protocol.encode_frame(protocol.MSG_GRAPH, self._graph_frame)
            )
            await writer.drain()
        except (ConnectionError, OSError):
            writer.close()
            return

        self._connections.append(conn)
        _dbg(f"join {conn.name} tier={tier}")
        self._stats.worker_joins += 1
        self._no_worker_since = None
        with self._membership:
            self._membership.notify_all()
        self._pump()
        try:
            while True:
                frame = await protocol.read_frame_async(reader)
                conn.last_seen = self._loop.time()
                if frame.msg_type == protocol.MSG_RESULT:
                    self._on_result(conn, frame.payload)
                elif frame.msg_type == protocol.MSG_BATCH_FAILED:
                    self._on_batch_failed(conn, frame.payload)
                elif frame.msg_type == protocol.MSG_HEARTBEAT:
                    continue
                elif frame.msg_type == protocol.MSG_GOODBYE:
                    self._drop(conn, "goodbye")
                    return
                # Any other frame type is tolerated and ignored: newer
                # workers may emit messages this coordinator predates.
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self._drop(conn, "connection lost")
        except wire.WireDecodeError:
            self._drop(conn, "malformed frame")
        except asyncio.CancelledError:
            raise

    def _handshake(self, hello: protocol.Frame) -> str:
        if hello.msg_type != protocol.MSG_HELLO:
            raise wire.WireDecodeError(
                f"expected HELLO, got frame type {hello.msg_type}"
            )
        message = protocol.decode_json(hello.payload)
        if message.get("magic") != protocol.MAGIC:
            raise EngineError("handshake magic mismatch")
        version = message.get("protocol")
        if version != protocol.PROTOCOL_VERSION:
            raise EngineError(
                f"protocol version mismatch: coordinator speaks "
                f"{protocol.PROTOCOL_VERSION}, worker speaks {version!r}"
            )
        formats = message.get("wire_formats")
        if (
            not isinstance(formats, list)
            or self.wire_format not in formats
        ):
            raise EngineError(
                f"worker does not support the {self.wire_format!r} wire "
                "format"
            )
        tier = message.get("kernel_tier")
        return tier if isinstance(tier, str) else "unknown"

    # ------------------------------------------------------------------
    # Liveness sweep (loop thread)
    # ------------------------------------------------------------------

    async def _sweep(self) -> None:
        liveness = self._heartbeat_s * self._liveness_windows
        ping = protocol.encode_frame(protocol.MSG_PING)
        while True:
            await asyncio.sleep(self._heartbeat_s)
            now = self._loop.time()
            for conn in list(self._connections):
                if now - conn.last_seen > liveness:
                    self._drop(conn, "missed heartbeats")
                    continue
                stale = [
                    entry
                    for entry in conn.inflight.values()
                    if now - entry.dispatched_at > self._batch_timeout_s
                ]
                if stale:
                    self._drop(conn, "batch timeout")
                    continue
                try:
                    conn.writer.write(ping)
                except Exception:
                    self._drop(conn, "write failed")
            if (
                self._pending_timeout_s is not None
                and self._pending
                and not self._connections
                and self._no_worker_since is not None
                and now - self._no_worker_since > self._pending_timeout_s
            ):
                error = EngineError(
                    "no workers connected for "
                    f"{self._pending_timeout_s:.0f}s with batches pending; "
                    "start workers with `repro worker --connect HOST:PORT`"
                )
                for entry in list(self._live.values()):
                    if not entry.future.done():
                        entry.future.set_exception(error)
                self._live.clear()
                self._pending.clear()
