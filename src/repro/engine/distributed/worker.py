"""Worker-side transport: a reconnecting TCP client around WorkerState.

``repro worker --connect HOST:PORT`` runs :func:`run_worker`, which
drives exactly the same compute path as an in-process pool worker —
:class:`repro.engine.pool.WorkerState` — behind a blocking socket:

handshake
    HELLO (protocol version, supported wire formats, local kernel
    tier) → WELCOME (coordinator's choices + heartbeat cadence) →
    GRAPH (the packed uint64 adjacency, shipped once per connection).
    The graph frame's fingerprint keys the rebuilt
    :class:`WorkerState`, so a reconnect to the *same* job skips the
    rebuild and keeps its per-region separator caches warm.

steady state
    BATCH frames are decoded with :func:`repro.engine.wire.
    batch_from_bytes`, executed via ``WorkerState.run_batch``, and the
    packed result is framed straight back, tagged with the batch id.
    A daemon heartbeat thread beats every ``heartbeat_s`` even while a
    long batch computes, so the coordinator's liveness sweep never
    mistakes "busy" for "dead".

failure
    A lost/reset/idle-timed-out connection triggers a bounded
    exponential-backoff reconnect loop (full jitter); the coordinator
    requeues whatever this worker owned, so a reconnecting worker
    never double-delivers.  A SHUTDOWN frame or an ERROR frame marked
    fatal (protocol mismatch, wrong wire format) ends the process
    instead — retrying a rejected handshake would loop forever.
"""

from __future__ import annotations

import random
import socket
import sys
import threading
import time
from dataclasses import dataclass

from repro.engine import wire
from repro.engine.base import EngineError
from repro.engine.distributed import protocol
from repro.engine.distributed.chaos import ChaosInjector
from repro.engine.pool import GraphPayload, WorkerState
from repro.engine.watchdog import BatchAbortedError, BatchLimits

__all__ = ["WorkerConfig", "run_worker"]


@dataclass(frozen=True)
class WorkerConfig:
    """Tunables for the reconnecting worker loop."""

    connect_timeout_s: float = 5.0
    #: Consecutive failed connection attempts before giving up.
    max_retries: int = 8
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 5.0
    #: Heartbeat cadence fallback; the coordinator's WELCOME overrides it.
    heartbeat_s: float = 2.0
    #: Idle receive window (multiples of heartbeat_s) before the
    #: coordinator is presumed dead and the worker reconnects.
    idle_windows: float = 6.0
    #: Per-batch resource watchdog (wall-clock deadline / RSS ceiling);
    #: ``None`` disables supervision.  On breach the batch is aborted
    #: cooperatively and reported with a BATCH_FAILED frame — the
    #: worker stays alive and keeps serving.
    limits: BatchLimits | None = None
    #: Fault injection: ``(separator_mask, mode)`` poison spec applied
    #: to the worker state (see ``WorkerState.set_poison``), and the
    #: chaos injector spliced into the socket after each handshake.
    poison: tuple[int, str] | None = None
    chaos: ChaosInjector | None = None


class _FatalHandshake(EngineError):
    """Coordinator rejected us for a reason reconnecting cannot fix."""


def _local_kernel_tier() -> str:
    """Best kernel tier this host can run, for the HELLO handshake."""
    try:
        from repro.graph import bitset_np as _bitset
    except ImportError:
        return "indexed"
    native = _bitset.GRAPH_BACKENDS.get("native")
    if native is not None and native.runtime_available():
        return "native"
    return "numpy"


def _log(message: str) -> None:
    print(f"[repro-worker] {message}", file=sys.stderr, flush=True)


def _backoff_sleep(attempt: int, config: WorkerConfig) -> None:
    ceiling = min(
        config.backoff_cap_s, config.backoff_base_s * (2 ** (attempt - 1))
    )
    time.sleep(ceiling * (0.5 + random.random() / 2))


class _Heartbeat(threading.Thread):
    """Beats MSG_HEARTBEAT on a cadence, including during long batches."""

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 interval_s: float):
        super().__init__(name="repro-worker-heartbeat", daemon=True)
        self._sock = sock
        self._lock = lock
        self._interval_s = interval_s
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        beat = protocol.encode_frame(protocol.MSG_HEARTBEAT)
        while not self._stop.wait(self._interval_s):
            try:
                with self._lock:
                    self._sock.sendall(beat)
            except OSError:
                return


def _handshake(sock: socket.socket, config: WorkerConfig) -> dict:
    """HELLO → WELCOME; returns the coordinator's welcome document."""
    hello = protocol.encode_json(
        {
            "magic": protocol.MAGIC,
            "protocol": protocol.PROTOCOL_VERSION,
            "wire_formats": ["packed"],
            "kernel_tier": _local_kernel_tier(),
        }
    )
    protocol.send_frame(sock, protocol.MSG_HELLO, hello)
    frame = protocol.recv_frame(sock)
    if frame.msg_type == protocol.MSG_ERROR:
        detail = protocol.decode_json(frame.payload)
        raise _FatalHandshake(
            f"coordinator rejected handshake: {detail.get('error', '?')}"
        )
    if frame.msg_type != protocol.MSG_WELCOME:
        raise wire.WireDecodeError(
            f"expected WELCOME, got frame type {frame.msg_type}"
        )
    welcome = protocol.decode_json(frame.payload)
    if welcome.get("magic") != protocol.MAGIC:
        raise _FatalHandshake("coordinator handshake magic mismatch")
    if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
        raise _FatalHandshake(
            "protocol version mismatch: worker speaks "
            f"{protocol.PROTOCOL_VERSION}, coordinator speaks "
            f"{welcome.get('protocol')!r}"
        )
    if welcome.get("wire_format") != "packed":
        raise _FatalHandshake(
            f"unsupported wire format {welcome.get('wire_format')!r}"
        )
    return welcome


def _receive_graph(
    sock: socket.socket,
    config: WorkerConfig,
    welcome: dict,
    state: WorkerState | None,
    fingerprint: str | None,
) -> tuple[WorkerState, str]:
    """GRAPH frame → WorkerState, reusing ``state`` when unchanged."""
    frame = protocol.recv_frame(sock)
    if frame.msg_type != protocol.MSG_GRAPH:
        raise wire.WireDecodeError(
            f"expected GRAPH, got frame type {frame.msg_type}"
        )
    incoming = protocol.payload_fingerprint(frame.payload)
    expected = welcome.get("fingerprint")
    if isinstance(expected, str) and expected and incoming != expected:
        # The WELCOME names the digest of the exact frame the
        # coordinator ships; a mismatch means the frame was corrupted
        # in transit.  Reconnecting re-ships it — never rebuild a graph
        # from bytes that failed their integrity check.
        raise wire.WireDecodeError(
            f"graph frame digest {incoming[:12]} does not match the "
            f"announced fingerprint {expected[:12]}"
        )
    if state is not None and incoming == fingerprint:
        return state, fingerprint
    payload: GraphPayload = protocol.decode_graph_payload(frame.payload)
    state = WorkerState(payload, limits=config.limits)
    if config.poison is not None:
        state.set_poison(*config.poison)
    return state, incoming


def _serve(
    sock: socket.socket,
    config: WorkerConfig,
    state: WorkerState | None,
    fingerprint: str | None,
) -> tuple[str, WorkerState | None, str | None]:
    """Serve one connection; returns (outcome, state, fingerprint).

    Outcome is ``"shutdown"`` (clean end of job), or ``"lost"`` (the
    connection died and a reconnect is in order).  Fatal handshake
    rejections propagate as :class:`_FatalHandshake`.
    """
    sock.settimeout(config.connect_timeout_s)
    try:
        welcome = _handshake(sock, config)
        state, fingerprint = _receive_graph(
            sock, config, welcome, state, fingerprint
        )
    except (ConnectionError, OSError, wire.WireDecodeError) as exc:
        # A coordinator tearing down (job already finished) resets
        # connections that are still mid-handshake; that is transient
        # fleet churn, not a protocol rejection — only an explicit
        # ERROR frame or a WELCOME mismatch is fatal.
        _log(f"handshake interrupted ({exc}); reconnecting")
        return "lost", state, fingerprint
    _log(
        f"joined job (graph {fingerprint[:12]}, "
        f"kernel tier {state.kernel_tier})"
    )

    heartbeat_s = welcome.get("heartbeat_s")
    if not isinstance(heartbeat_s, (int, float)) or heartbeat_s <= 0:
        heartbeat_s = config.heartbeat_s
    if config.chaos is not None:
        # Splice the fault schedule in only now: the handshake must
        # stay clean (a corrupted HELLO/WELCOME is a *fatal* protocol
        # rejection by design — chaos injects only survivable faults).
        sock = config.chaos.wrap(sock)
    write_lock = threading.Lock()
    heartbeat = _Heartbeat(sock, write_lock, float(heartbeat_s))
    heartbeat.start()
    sock.settimeout(heartbeat_s * config.idle_windows)
    batches = 0
    try:
        while True:
            try:
                frame = protocol.recv_frame(sock)
            except socket.timeout:
                _log("coordinator went silent; reconnecting")
                return "lost", state, fingerprint
            if frame.msg_type == protocol.MSG_BATCH:
                batch_id, body = protocol.unpack_tagged(frame.payload)
                batch = wire.batch_from_bytes(body)
                try:
                    result = state.run_batch(batch)
                except BatchAbortedError as exc:
                    # Watchdog breach (or injected poison): the batch
                    # is reported failed with a typed frame and this
                    # worker keeps serving — no process death, no
                    # reconnect burned, scratch state already freed.
                    _log(
                        f"batch {batch_id} aborted ({exc.reason}) after "
                        f"{exc.elapsed_s:.1f}s; staying alive"
                    )
                    data = protocol.encode_batch_failed(
                        batch_id, exc.reason, exc.elapsed_s, exc.peak_rss
                    )
                    with write_lock:
                        protocol.send_frame(
                            sock, protocol.MSG_BATCH_FAILED, data
                        )
                    continue
                data = protocol.pack_tagged(
                    batch_id, wire.result_to_bytes(result)
                )
                with write_lock:
                    protocol.send_frame(sock, protocol.MSG_RESULT, data)
                batches += 1
            elif frame.msg_type == protocol.MSG_PING:
                continue  # liveness is carried by the heartbeat thread
            elif frame.msg_type == protocol.MSG_SHUTDOWN:
                _log(f"job complete ({batches} batches served)")
                return "shutdown", state, fingerprint
            elif frame.msg_type == protocol.MSG_ERROR:
                detail = protocol.decode_json(frame.payload)
                if detail.get("fatal"):
                    raise _FatalHandshake(str(detail.get("error", "?")))
                _log(f"coordinator error: {detail.get('error', '?')}")
            # Unknown frame types are ignored for forward compatibility.
    except (ConnectionError, OSError, wire.WireDecodeError) as exc:
        _log(f"connection lost ({exc}); reconnecting")
        return "lost", state, fingerprint
    finally:
        heartbeat.stop()


def run_worker(
    address: tuple[str, int], config: WorkerConfig | None = None
) -> int:
    """Connect to a coordinator and serve batches until the job ends.

    Returns a process exit code: 0 on clean SHUTDOWN, 1 when the
    reconnect budget is exhausted, 2 on a fatal handshake rejection.
    """
    config = config if config is not None else WorkerConfig()
    state: WorkerState | None = None
    fingerprint: str | None = None
    attempts = 0
    while True:
        try:
            sock = socket.create_connection(
                address, timeout=config.connect_timeout_s
            )
        except OSError as exc:
            attempts += 1
            if attempts > config.max_retries:
                _log(
                    f"could not reach coordinator at "
                    f"{address[0]}:{address[1]} after {attempts - 1} "
                    f"retries: {exc}"
                )
                return 1
            _backoff_sleep(attempts, config)
            continue
        try:
            try:
                outcome, state, fingerprint = _serve(
                    sock, config, state, fingerprint
                )
            except socket.timeout:
                outcome = "lost"
            except _FatalHandshake as exc:
                _log(str(exc))
                return 2
            except KeyboardInterrupt:
                # Operator-initiated departure: announce it so the
                # coordinator requeues our batches immediately instead
                # of waiting out the heartbeat-miss window.
                try:
                    protocol.send_frame(sock, protocol.MSG_GOODBYE)
                except OSError:
                    pass
                raise
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if outcome == "shutdown":
            return 0
        if state is not None:
            # We had a working session; treat the loss as transient and
            # restart the retry budget.
            attempts = 0
        attempts += 1
        if attempts > config.max_retries:
            _log("reconnect budget exhausted; giving up")
            return 1
        _backoff_sleep(attempts, config)
