"""Deterministic chaos injection for the distributed transport.

The fault-injection suite (and the CI chaos soak) needs to drive the
full coordinator/worker stack through *reproducible* schedules of
network faults — dropped frames, delays, duplicated results, mid-frame
connection resets and byte corruption — and assert that the answer set
still equals the serial enumeration every single time.  Hand-scripted
kill tests cover single faults; this module covers the combinatorial
space.

:class:`ChaosInjector` wraps the **worker's** blocking socket (the
plain-socket flavour of :mod:`~repro.engine.distributed.protocol`)
after the handshake completes.  Wrapping worker-side keeps the asyncio
coordinator untouched and is sufficient: every steady-state frame
crosses this socket in one direction or the other, so both the
worker→coordinator path (results, heartbeats) and the
coordinator→worker path (batches, pings) are perturbed.  The handshake
itself is deliberately left clean — a corrupted HELLO/WELCOME is a
*protocol rejection* (fatal by design, so a genuinely mismatched build
fails loudly), not transient churn, and chaos must only inject faults
the stack is specified to survive.

Determinism: faults are drawn from per-frame-type ``random.Random``
streams derived from the seed, so the schedule for RESULT frames does
not depend on how many heartbeats the side thread happened to send
first — the send-side schedule is exactly reproducible per type.  The
receive side draws from its own seeded stream per ``recv`` call; chunk
boundaries depend on kernel buffering, so its schedule is seeded but
not bit-exact across machines.  Correctness assertions never depend on
the schedule — only on answer-set equality.

Enable via ``repro worker --chaos-spec "seed=7,drop=0.05"`` or the
``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_SPEC`` environment variables
(picked up by the worker CLI, so a whole fleet can be perturbed
without touching the command line).
"""

from __future__ import annotations

import random
import socket
import time
import zlib
from dataclasses import dataclass, fields

from repro.engine.base import EngineError

__all__ = ["ChaosSpec", "ChaosInjector"]


@dataclass(frozen=True)
class ChaosSpec:
    """One reproducible fault schedule: a seed plus per-fault rates.

    Rates are per-frame (send side) / per-read (receive side)
    probabilities in [0, 1].  The defaults are modest — a soak run
    completes, slowly — and any field can be pinned via the spec
    string, e.g. ``"seed=7,drop=0.2,delay_ms=2"``.
    """

    seed: int = 0
    #: Send: swallow the frame entirely (a lost result/heartbeat).
    drop: float = 0.02
    #: Send: transmit the frame twice (a duplicated result).
    dup: float = 0.02
    #: Send/recv: flip one byte (wire corruption).
    corrupt: float = 0.02
    #: Send/recv: close the socket after a partial frame (mid-frame reset).
    reset: float = 0.01
    #: Send/recv: stall before the operation.
    delay: float = 0.05
    delay_ms: float = 5.0

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "corrupt", "reset", "delay"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise EngineError(
                    f"chaos rate {name} must be in [0, 1], got {value!r}"
                )
        if self.delay_ms < 0:
            raise EngineError("chaos delay_ms must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse ``"seed=7,drop=0.1,..."`` into a spec (typed errors)."""
        known = {f.name: f.type for f in fields(cls)}
        values: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise EngineError(
                    f"chaos spec entry {part!r} is not one of "
                    f"{sorted(known)} (format: key=value,...)"
                )
            try:
                values[key] = int(raw) if key == "seed" else float(raw)
            except ValueError:
                raise EngineError(
                    f"chaos spec entry {part!r} has a non-numeric value"
                ) from None
        return cls(**values)

    @classmethod
    def from_env(cls, environ) -> "ChaosSpec | None":
        """Spec from ``REPRO_CHAOS_SPEC``/``REPRO_CHAOS_SEED`` (or None)."""
        spec = environ.get("REPRO_CHAOS_SPEC")
        if spec:
            return cls.parse(spec)
        seed = environ.get("REPRO_CHAOS_SEED")
        if seed:
            try:
                return cls(seed=int(seed, 0))
            except ValueError:
                raise EngineError(
                    f"REPRO_CHAOS_SEED={seed!r} is not an integer"
                ) from None
        return None


def _derive_stream(seed: int, key: str) -> random.Random:
    """A named deterministic sub-stream of the seed (no hash salting)."""
    return random.Random((seed << 32) ^ zlib.crc32(key.encode()))


class _ChaosSocket:
    """The worker's socket with a fault schedule spliced into it.

    Exposes exactly the surface the worker loop and the protocol's
    plain-socket codec use (``sendall``/``recv``/``settimeout``/
    ``close``); everything is forwarded to the real socket around the
    injected faults.
    """

    def __init__(self, sock: socket.socket, injector: "ChaosInjector"):
        self._sock = sock
        self._injector = injector

    # -- the faulty paths ----------------------------------------------

    def sendall(self, data: bytes) -> None:
        # send_frame writes one whole frame per sendall, so faults here
        # are frame-aligned: data[0] is the message type.
        injector = self._injector
        spec = injector.spec
        rng = injector.send_stream(data[0] if data else 0)
        if rng.random() < spec.delay:
            time.sleep(spec.delay_ms / 1000.0)
        draw = rng.random()
        if draw < spec.drop:
            return  # swallowed: the peer never sees this frame
        draw -= spec.drop
        if draw < spec.reset:
            cut = rng.randrange(1, len(data)) if len(data) > 1 else 0
            try:
                if cut:
                    self._sock.sendall(data[:cut])
            finally:
                self._hard_close()
            raise ConnectionResetError("chaos: connection reset mid-frame")
        draw -= spec.reset
        if draw < spec.corrupt:
            index = rng.randrange(len(data))
            flipped = data[index] ^ (1 << rng.randrange(8))
            data = data[:index] + bytes((flipped,)) + data[index + 1 :]
            self._sock.sendall(data)
            return
        draw -= spec.corrupt
        self._sock.sendall(data)
        if draw < spec.dup:
            self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        injector = self._injector
        spec = injector.spec
        rng = injector.recv_stream()
        if rng.random() < spec.delay:
            time.sleep(spec.delay_ms / 1000.0)
        draw = rng.random()
        if draw < spec.reset:
            self._hard_close()
            raise ConnectionResetError("chaos: connection reset on read")
        chunk = self._sock.recv(bufsize)
        draw -= spec.reset
        if chunk and draw < spec.corrupt:
            index = rng.randrange(len(chunk))
            flipped = chunk[index] ^ (1 << rng.randrange(8))
            chunk = chunk[:index] + bytes((flipped,)) + chunk[index + 1 :]
        return chunk

    def _hard_close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- transparent forwarding ----------------------------------------

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def close(self) -> None:
        self._sock.close()


class ChaosInjector:
    """Fault schedules for one worker process, stable across reconnects.

    One injector lives for the worker's lifetime: its streams are *not*
    reset when the connection is re-established, so a run's fault
    schedule is a single deterministic sequence per frame type rather
    than restarting from the seed after every chaos-induced reconnect
    (which could live-lock a schedule whose first draw is a reset).
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self._send_streams: dict[int, random.Random] = {}
        self._recv = _derive_stream(spec.seed, "recv")

    def send_stream(self, msg_type: int) -> random.Random:
        stream = self._send_streams.get(msg_type)
        if stream is None:
            stream = _derive_stream(self.spec.seed, f"send:{msg_type}")
            self._send_streams[msg_type] = stream
        return stream

    def recv_stream(self) -> random.Random:
        return self._recv

    def wrap(self, sock: socket.socket) -> _ChaosSocket:
        """Splice this injector into a freshly-handshaken socket."""
        return _ChaosSocket(sock, self)
