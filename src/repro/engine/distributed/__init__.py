"""Distributed multi-host enumeration: TCP coordinator + socket workers.

This package registers the ``"distributed"`` backend.  It is the
transport-level sibling of the ``"sharded"`` process-pool backend: both
drive :func:`repro.engine.sharded.coordinated_stream` — the
backend-agnostic (Q, P, V) assembly with checkpointing, multi-region
products and adaptive batching — and differ only in the runner behind
``submit(batch) → Future``.  Here that runner is
:class:`~repro.engine.distributed.runner.DistributedRunner`, an asyncio
TCP server that ships the packed graph once per connected host and
fans batches out over a framed, versioned protocol
(:mod:`~repro.engine.distributed.protocol`).  Hosts run
``repro worker --connect HOST:PORT``
(:mod:`~repro.engine.distributed.worker`), which executes batches with
the same :class:`~repro.engine.pool.WorkerState` compute path as an
in-process pool worker.

Membership is elastic — workers may join or leave mid-job; batches
owned by a lost host are requeued exactly-once — and coordinator
restart rides the ordinary checkpoint document: resume the job, point
the workers at the new port, and enumeration continues without
re-yielding delivered answers.  See the README's "Distributed" section
for the two-terminal quickstart.

The submodule imports numpy (via the packed wire format); this package
keeps its import lazy so ``import repro.engine`` works on numpy-less
installs, and the backend raises a typed error only when actually used.
"""

from __future__ import annotations

from repro.engine.base import EngineError, EnumerationBackend, register_backend
from repro.engine.distributed.protocol import (
    DEFAULT_LIVENESS_WINDOWS,
    parse_address,
    validate_liveness_config,
)

__all__ = ["DistributedBackend", "parse_address"]


class DistributedBackend(EnumerationBackend):
    """TCP coordinator backend: listen for workers, stream answers.

    An unconfigured instance is registered under ``"distributed"`` so
    the backend shows up in discovery, but streaming requires a listen
    address — the CLI builds a configured instance from ``--listen``
    and passes it to the engine directly (``get_backend`` accepts
    instances).
    """

    name = "distributed"

    def __init__(
        self,
        listen: str | tuple[str, int] | None = None,
        *,
        expected_workers: int = 1,
        heartbeat_s: float = 2.0,
        batch_timeout_s: float = 300.0,
        pending_timeout_s: float | None = None,
        wait_for_workers_s: float | None = None,
        on_listening=None,
        max_batch_retries: int = 3,
        liveness_windows: float | None = None,
    ) -> None:
        if isinstance(listen, str):
            listen = parse_address(listen)
        # Validate liveness knobs eagerly: a pending timeout shorter
        # than the heartbeat can never fire and should fail at
        # configuration time, not minutes into a run.
        if liveness_windows is None:
            liveness_windows = DEFAULT_LIVENESS_WINDOWS
        validate_liveness_config(
            heartbeat_s, pending_timeout_s, liveness_windows
        )
        self._listen = listen
        self._expected_workers = expected_workers
        self._heartbeat_s = heartbeat_s
        self._batch_timeout_s = batch_timeout_s
        self._pending_timeout_s = pending_timeout_s
        self._wait_for_workers_s = wait_for_workers_s
        self._on_listening = on_listening
        self._max_batch_retries = max_batch_retries
        self._liveness_windows = liveness_windows

    def stream(self, job, stats, workers):
        if self._listen is None:
            raise EngineError(
                "the distributed backend needs a listen address: pass "
                "--listen HOST:PORT on the command line, or construct "
                "DistributedBackend(listen=(host, port)) and hand the "
                "instance to the engine"
            )
        try:
            from repro.engine.distributed.runner import DistributedRunner
        except ImportError as exc:  # pragma: no cover - numpy-less installs
            raise EngineError(
                "the distributed backend requires numpy (packed wire "
                "format); install numpy or use --backend serial"
            ) from exc
        from repro.engine.sharded import coordinated_stream

        expected = workers if workers is not None else self._expected_workers
        expected = max(1, int(expected))

        def factory(payload):
            return DistributedRunner(
                payload,
                self._listen,
                expected_workers=expected,
                heartbeat_s=self._heartbeat_s,
                batch_timeout_s=self._batch_timeout_s,
                pending_timeout_s=self._pending_timeout_s,
                stats=stats,
                on_listening=self._on_listening,
                wait_for_workers_s=self._wait_for_workers_s,
                max_batch_retries=self._max_batch_retries,
                liveness_windows=self._liveness_windows,
            )

        return coordinated_stream(job, stats, factory)


register_backend(DistributedBackend())
