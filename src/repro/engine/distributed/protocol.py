"""Framed TCP protocol of the distributed enumeration runner.

Transport framing
-----------------
Every message is one *frame*: a 5-byte header — ``!BI`` message type
plus body length — followed by the body.  Bodies are bounded
(:data:`MAX_FRAME_BYTES`), so a corrupt or hostile length word can
never provoke a giant allocation; anything malformed raises the typed
:class:`~repro.engine.wire.WireDecodeError` and the connection is
dropped.  The same framing is implemented twice on purpose: an asyncio
flavour for the coordinator's server (many connections, one event
loop) and a plain-socket flavour for the worker (one connection, a
simple blocking loop with timeouts) — the bytes on the wire are
identical.

Handshake
---------
A connecting worker sends ``HELLO`` (JSON): magic, protocol version,
the wire formats it can decode, and its available graph-kernel tier.
The coordinator answers ``WELCOME`` (JSON): protocol version, the
chosen wire format, the **graph fingerprint** (a digest of the exact
graph payload this job ships), the coordinator's kernel tier and the
heartbeat cadence — then streams the ``GRAPH`` frame itself (JSON
header + the packed ``uint64`` adjacency, shipped once per host).  A
worker that reconnects — after a network blip or a coordinator restart
— compares the fingerprint against the graph it already holds and
skips the rebuild when they match, so resuming a job against a warm
fleet costs one round-trip, not a re-ship of the adjacency.

Version or format mismatches are answered with a fatal ``ERROR`` frame
before closing, so an old worker fails loudly instead of retrying
forever against a coordinator it cannot serve.

Steady state
------------
``BATCH`` (coordinator → worker) and ``RESULT`` (worker → coordinator)
carry an ``!QI`` batch id + CRC-32 of the body, then the flat byte
serialisations of :mod:`repro.engine.wire` — the checksum means a
bit-flipped batch or result is always *detected* (the connection is
dropped and the batch requeued) instead of decoding into wrong masks.
``BATCH_FAILED`` (worker → coordinator) is the typed cooperative-abort
reply: the worker hit its per-batch resource watchdog (wall-clock
deadline or RSS ceiling), freed its scratch state and *stayed alive*;
the body is the batch id + a JSON ``{reason, elapsed_s, peak_rss}``
document the coordinator feeds into its retry/quarantine policy.
``HEARTBEAT`` frames flow worker →
coordinator on a fixed cadence (from a side thread, so a worker deep
in a long ``Extend`` still proves liveness); ``PING`` flows coordinator
→ worker so an idle worker can distinguish a quiet coordinator from a
dead one.  ``GOODBYE`` announces a graceful worker departure;
``SHUTDOWN`` tells workers the job is complete.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.engine.base import EngineError, WireDecodeError

if TYPE_CHECKING:  # typed-core annotations only — no runtime import
    import asyncio
    import threading

    from repro.engine.pool import GraphPayload

__all__ = [
    "PROTOCOL_VERSION",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_GRAPH",
    "MSG_BATCH",
    "MSG_RESULT",
    "MSG_HEARTBEAT",
    "MSG_PING",
    "MSG_GOODBYE",
    "MSG_SHUTDOWN",
    "MSG_ERROR",
    "MSG_BATCH_FAILED",
    "Frame",
    "encode_frame",
    "read_frame_async",
    "recv_frame",
    "send_frame",
    "encode_json",
    "decode_json",
    "encode_graph_payload",
    "decode_graph_payload",
    "payload_fingerprint",
    "pack_tagged",
    "unpack_tagged",
    "encode_batch_failed",
    "decode_batch_failed",
    "parse_address",
    "DEFAULT_LIVENESS_WINDOWS",
    "validate_liveness_config",
]

#: Heartbeat windows a connection may miss before it is declared dead
#: (default; CLI-configurable via --heartbeat-misses).  Lives here —
#: the numpy-free module both transport ends import — so backend
#: construction can validate liveness settings without importing the
#: runner (which needs numpy for the packed wire format).
DEFAULT_LIVENESS_WINDOWS = 3.0


def validate_liveness_config(
    heartbeat_s: float,
    pending_timeout_s: float | None,
    liveness_windows: float = DEFAULT_LIVENESS_WINDOWS,
) -> None:
    """Reject liveness settings that cannot work, at startup.

    The pending-timeout is enforced by the sweeper, which ticks once
    per heartbeat interval — a ``pending_timeout_s`` at or below
    ``heartbeat_s`` would fire late (or confusingly, on its first
    tick), so it is rejected up front with an actionable error rather
    than surfacing as a mysterious late timeout mid-run.
    """
    if heartbeat_s <= 0:
        raise EngineError("heartbeat interval must be positive")
    if liveness_windows <= 0:
        raise EngineError("heartbeat miss threshold must be positive")
    if pending_timeout_s is not None and pending_timeout_s <= heartbeat_s:
        raise EngineError(
            f"pending_timeout_s ({pending_timeout_s:g}s) must exceed the "
            f"heartbeat interval ({heartbeat_s:g}s): the liveness sweep "
            "that enforces it only ticks once per heartbeat — raise "
            "--pending-timeout or lower --heartbeat-interval"
        )

#: Version 2 added the per-body CRC-32 in tagged frames and the
#: BATCH_FAILED cooperative-abort frame.  The handshake itself (HELLO/
#: WELCOME/ERROR JSON bodies) is unchanged, so a version-1 worker
#: knocking on a version-2 coordinator — or vice versa — is still
#: answered with a clean fatal ERROR frame rather than garbage.
PROTOCOL_VERSION = 2
MAGIC = "repro-enum"

#: Per-frame body cap.  The largest legitimate frame is the graph
#: payload (``rows × words × 8`` bytes of packed adjacency): 256 MiB
#: covers graphs far beyond anything the enumeration itself could
#: handle, while bounding what a malformed header can make us allocate.
MAX_FRAME_BYTES = 1 << 28

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_GRAPH = 3
MSG_BATCH = 4
MSG_RESULT = 5
MSG_HEARTBEAT = 6
MSG_PING = 7
MSG_GOODBYE = 8
MSG_SHUTDOWN = 9
MSG_ERROR = 10
MSG_BATCH_FAILED = 11

_KNOWN_TYPES = frozenset(range(MSG_HELLO, MSG_BATCH_FAILED + 1))

_HEADER = struct.Struct("!BI")
_BATCH_ID = struct.Struct("!Q")


@dataclass(frozen=True)
class Frame:
    """One decoded frame: message type + raw body."""

    msg_type: int
    payload: bytes


def _validate_header(msg_type: int, length: int) -> None:
    if msg_type not in _KNOWN_TYPES:
        raise WireDecodeError(f"unknown frame type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WireDecodeError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )


def encode_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """Serialise one frame (header + body) into bytes."""
    _validate_header(msg_type, len(payload))
    return _HEADER.pack(msg_type, len(payload)) + payload


# ----------------------------------------------------------------------
# Asyncio flavour (coordinator side)
# ----------------------------------------------------------------------


async def read_frame_async(reader: asyncio.StreamReader) -> Frame:
    """Read one frame from an ``asyncio.StreamReader``.

    Raises ``asyncio.IncompleteReadError`` on EOF and
    :class:`WireDecodeError` on malformed headers.
    """
    header = await reader.readexactly(_HEADER.size)
    msg_type, length = _HEADER.unpack(header)
    _validate_header(msg_type, length)
    payload = await reader.readexactly(length) if length else b""
    return Frame(msg_type, payload)


# ----------------------------------------------------------------------
# Plain-socket flavour (worker side)
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame:
    """Read one frame from a blocking socket (honours its timeout)."""
    msg_type, length = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    _validate_header(msg_type, length)
    payload = _recv_exact(sock, length) if length else b""
    return Frame(msg_type, payload)


def send_frame(
    sock: socket.socket,
    msg_type: int,
    payload: bytes = b"",
    lock: threading.Lock | None = None,
) -> None:
    """Write one frame; ``lock`` serialises writers (heartbeat thread)."""
    data = encode_frame(msg_type, payload)
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


# ----------------------------------------------------------------------
# JSON message bodies (handshake, errors)
# ----------------------------------------------------------------------


def encode_json(message: dict) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode()


def decode_json(payload: bytes) -> dict:
    try:
        message = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireDecodeError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise WireDecodeError("frame body must be a JSON object")
    return message


# ----------------------------------------------------------------------
# Batch/result bodies (batch id + wire bytes)
# ----------------------------------------------------------------------


_TAGGED = struct.Struct("!QI")


def pack_tagged(batch_id: int, body: bytes) -> bytes:
    """Prefix ``body`` with its ``!Q`` batch id and CRC-32."""
    return _TAGGED.pack(batch_id, zlib.crc32(body)) + body


def unpack_tagged(payload: bytes) -> tuple[int, bytes]:
    """Split a tagged body into ``(batch_id, body bytes)``, CRC-checked.

    The checksum turns silent wire corruption of a batch or result into
    a typed decode failure — the connection is dropped and the batch
    requeued, so a flipped bit costs a retry, never a wrong answer.
    """
    if len(payload) < _TAGGED.size:
        raise WireDecodeError(
            f"tagged frame of {len(payload)} bytes is shorter than its "
            "id + checksum"
        )
    batch_id, crc = _TAGGED.unpack_from(payload)
    body = payload[_TAGGED.size :]
    if zlib.crc32(body) != crc:
        raise WireDecodeError(
            f"tagged frame for batch {batch_id} failed its CRC-32 check"
        )
    return batch_id, body


def encode_batch_failed(
    batch_id: int, reason: str, elapsed_s: float, peak_rss: int
) -> bytes:
    """Body of a BATCH_FAILED frame (cooperative worker-side abort)."""
    return pack_tagged(
        batch_id,
        encode_json(
            {
                "reason": reason,
                "elapsed_s": float(elapsed_s),
                "peak_rss": int(peak_rss),
            }
        ),
    )


def decode_batch_failed(payload: bytes) -> tuple[int, str, float, int]:
    """Decode a BATCH_FAILED body → (batch_id, reason, elapsed, peak_rss)."""
    batch_id, body = unpack_tagged(payload)
    detail = decode_json(body)
    try:
        reason = str(detail["reason"])
        elapsed_s = float(detail["elapsed_s"])
        peak_rss = int(detail["peak_rss"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireDecodeError(f"malformed BATCH_FAILED body: {exc}") from exc
    return batch_id, reason, elapsed_s, peak_rss


# ----------------------------------------------------------------------
# The graph payload frame
# ----------------------------------------------------------------------

_LABEL_TYPES = {int: "i", str: "s", float: "f", bool: "b"}


def _encode_label(label: Hashable) -> list[object]:
    """JSON-safe label encoding (type-tagged so ``1`` ≠ ``"1"``)."""
    kind = _LABEL_TYPES.get(type(label))
    if kind is not None:
        return [kind, label]
    if label is None:
        return ["n"]
    if isinstance(label, tuple):
        return ["t", [_encode_label(item) for item in label]]
    raise EngineError(
        f"distributed execution needs JSON-encodable node labels "
        f"(int/str/float/bool/None/tuples thereof), got "
        f"{type(label).__name__}"
    )


def _decode_label(encoded: object) -> Hashable:
    if not isinstance(encoded, list) or not encoded:
        raise WireDecodeError("malformed label encoding")
    kind = encoded[0]
    if kind == "n":
        return None
    if len(encoded) != 2:
        raise WireDecodeError("malformed label encoding")
    value = encoded[1]
    if kind == "t":
        if not isinstance(value, list):
            raise WireDecodeError("malformed tuple label")
        return tuple(_decode_label(item) for item in value)
    expected = {"i": int, "s": str, "f": float, "b": bool}.get(kind)
    if expected is None or not isinstance(value, expected) or (
        expected is int and isinstance(value, bool)
    ):
        raise WireDecodeError(f"malformed label of kind {kind!r}")
    return value


_GRAPH_HEADER_LEN = struct.Struct("!I")


def encode_graph_payload(payload: GraphPayload) -> bytes:
    """Serialise a :class:`~repro.engine.pool.GraphPayload` for the wire.

    Only packed payloads ship (the distributed backend requires numpy
    on both ends); the triangulator must be a registry name — custom
    heuristic *instances* would need pickling, which the socket
    protocol deliberately never does.
    """
    if payload.packed is None:
        raise EngineError(
            "distributed execution requires a packed graph payload "
            "(numpy must be installed on the coordinator)"
        )
    if not isinstance(payload.triangulator, str):
        raise EngineError(
            "distributed execution requires a registry-named "
            "triangulator (custom instances cannot ship over a socket)"
        )
    header = encode_json(
        {
            "labels": [_encode_label(label) for label in payload.labels],
            "alive": payload.alive,
            "num_edges": payload.num_edges,
            "triangulator": payload.triangulator,
            "backend": payload.backend,
            "rows": payload.rows,
            "words": payload.words,
        }
    )
    return _GRAPH_HEADER_LEN.pack(len(header)) + header + payload.packed


def decode_graph_payload(data: bytes) -> "GraphPayload":
    """Rebuild a validated :class:`~repro.engine.pool.GraphPayload`."""
    from repro.engine.pool import GraphPayload

    if len(data) < _GRAPH_HEADER_LEN.size:
        raise WireDecodeError("graph frame is shorter than its header")
    (header_len,) = _GRAPH_HEADER_LEN.unpack_from(data)
    if header_len > len(data) - _GRAPH_HEADER_LEN.size:
        raise WireDecodeError("graph frame header overruns the frame")
    header = decode_json(
        data[_GRAPH_HEADER_LEN.size : _GRAPH_HEADER_LEN.size + header_len]
    )
    packed = data[_GRAPH_HEADER_LEN.size + header_len :]
    try:
        labels = tuple(
            _decode_label(item) for item in header["labels"]
        )
        alive = int(header["alive"])
        num_edges = int(header["num_edges"])
        triangulator = str(header["triangulator"])
        backend = str(header["backend"])
        rows = int(header["rows"])
        words = int(header["words"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireDecodeError(f"malformed graph header: {exc}") from exc
    if alive < 0 or rows < 0 or words < 1 or num_edges < 0:
        raise WireDecodeError("graph header fields out of range")
    if len(labels) != rows:
        raise WireDecodeError(
            f"graph header names {len(labels)} labels for {rows} rows"
        )
    if len(packed) != rows * words * 8:
        raise WireDecodeError(
            f"packed adjacency holds {len(packed)} bytes; expected "
            f"{rows * words * 8} for {rows} rows × {words} words"
        )
    return GraphPayload(
        labels=labels,
        alive=alive,
        num_edges=num_edges,
        triangulator=triangulator,
        backend=backend,
        rows=rows,
        words=words,
        packed=packed,
    )


def payload_fingerprint(graph_frame: bytes) -> str:
    """Digest of the exact graph frame a job ships.

    Computed over the serialised frame, so it pins everything a worker
    rebuilds from: labels, interning order, adjacency, triangulator and
    graph-core backend.  Workers use it to recognise the job across
    reconnects (and a restarted coordinator of the same job) and reuse
    their warm state instead of rebuilding.
    """
    return hashlib.sha256(graph_frame).hexdigest()


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (host defaults to all interfaces for '')."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise EngineError(
            f"address {text!r} must look like host:port (host may be "
            "empty to bind every interface)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise EngineError(f"invalid port in address {text!r}") from None
    if not 0 <= port <= 65535:
        raise EngineError(f"port {port} out of range in address {text!r}")
    return host or "0.0.0.0", port
