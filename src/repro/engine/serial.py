"""The ``serial`` backend: today's single-process enumeration pipeline.

A thin wrapper over
:func:`repro.core.enumerate.enumerate_minimal_triangulations` (plain
jobs) and
:func:`repro.core.ranked.enumerate_minimal_triangulations_prioritized`
(ranked jobs).  Checkpointable jobs — single- and multi-region alike —
route through the same coordinator assembly the sharded backend uses,
with an in-process :class:`~repro.engine.pool.InlineRunner` —
identical (Q, P, V) semantics and checkpoint format, no worker pool.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.triangulation import Triangulation
from repro.engine.base import EnumerationBackend, register_backend
from repro.engine.job import EnumerationJob
from repro.engine.pool import InlineRunner
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["SerialBackend"]


class SerialBackend(EnumerationBackend):
    """Single-process execution (the reference implementation)."""

    name = "serial"

    def stream(
        self,
        job: EnumerationJob,
        stats: EnumMISStatistics,
        workers: int | None,
    ) -> Iterator[Triangulation]:
        if job.checkpoint_path is not None:
            from repro.engine.sharded import coordinated_stream

            return coordinated_stream(job, stats, InlineRunner)
        if job.cost is not None:
            from repro.core.ranked import (
                enumerate_minimal_triangulations_prioritized,
            )

            return enumerate_minimal_triangulations_prioritized(
                job.graph,
                cost=job.cost,
                triangulator=job.triangulator,
                stats=stats,
            )
        from repro.core.enumerate import enumerate_minimal_triangulations

        # graph_backend=None: the engine already resolved the job's
        # graph-core backend before dispatch — keep it as-is.
        return enumerate_minimal_triangulations(
            job.graph,
            triangulator=job.triangulator,
            mode=job.mode,
            stats=stats,
            decompose=job.decompose,
            graph_backend=None,
        )


register_backend(SerialBackend())
