"""The ``sharded`` backend: EnumMIS across a multiprocessing pool.

The graph is decomposed exactly as the serial pipeline does
(components / atoms / none); each region runs a
:class:`~repro.engine.coordinator.MISCoordinator` whose extend tasks
execute on a shared worker pool, and disconnected inputs are recombined
through the same lazy fair product as the serial enumerator.  Answers
arrive as frozensets of separator masks and are materialised into
:class:`~repro.core.triangulation.Triangulation` objects here, by
saturating the masks on a scratch bitmask core — identical to the
serial yield path, so both backends produce equal Triangulation values.

The module also hosts :func:`coordinated_stream`, the backend-agnostic
assembly (regions → coordinators → materialisation → product), which
the serial backend reuses with an in-process runner for checkpointable
runs.  Checkpointing covers multi-region jobs too: every region owns a
section of one checkpoint document (see
:mod:`repro.engine.checkpoint`), the cross-region product records its
arrival order and delivered-combination count, and resume replays the
recorded product deterministically so no combination is delivered
twice and none is lost.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator

from repro.core.ranked import _resolve_cost
from repro.core.triangulation import Triangulation
from repro.engine.base import EngineError, EnumerationBackend, register_backend
from repro.engine.batching import AdaptiveBatcher
from repro.engine.checkpoint import (
    CheckpointDocument,
    CheckpointError,
    CheckpointManager,
    job_fingerprint,
    region_fingerprint,
)
from repro.engine.coordinator import Answer, MISCoordinator
from repro.engine.job import EnumerationJob
from repro.engine.pool import (
    PoolRunner,
    default_worker_count,
    make_payload,
)
from repro.engine.watchdog import BatchLimits
from repro.graph.components import connected_components
from repro.graph.graph import Graph, Node
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["ShardedBackend", "coordinated_stream"]


def _resolve_regions(job: EnumerationJob) -> list[frozenset]:
    graph = job.graph
    if job.decompose == "none":
        return [graph.node_set()]
    if job.decompose == "atoms":
        from repro.chordal.atoms import atoms

        return list(atoms(graph))
    return list(connected_components(graph))


def _materialise(
    region: Graph, answer: Answer
) -> Triangulation:
    """``g[φ]`` from separator masks — the fill at yield time."""
    scratch = region.core.copy()
    label_of = region.label_of
    fill: list[tuple[Node, Node]] = []
    for separator_mask in answer:
        for u, v in scratch.saturate(separator_mask):
            fill.append((label_of(u), label_of(v)))
    return Triangulation(region, tuple(fill))


class _DocumentSink:
    """One checkpoint document shared by every region of a job.

    Coordinators call :meth:`save` (directly, or through their cadence
    counter); the sink then snapshots *all* attached coordinators plus
    the cross-region product state and writes the whole document
    atomically.  For multi-region jobs ``caches`` holds each region's
    answers in product-arrival order and overrides the per-section
    ``yielded`` lists, whose order the replay on resume depends on.
    """

    def __init__(
        self, manager: CheckpointManager, stats: EnumMISStatistics
    ) -> None:
        self.every = manager.every
        self._manager = manager
        self._stats = stats
        self._coordinators: list[MISCoordinator] = []
        # Product state; ``caches`` stays None for single-region jobs.
        self.caches: list[list[Answer]] | None = None
        self.arrivals: list[int] = []
        self.delivered = 0
        self._since_save = 0

    def attach(self, coordinator: MISCoordinator) -> None:
        self._coordinators.append(coordinator)

    def save(self) -> None:
        regions = []
        stats = dict(self._stats.snapshot())
        for index, coordinator in enumerate(self._coordinators):
            section = coordinator.control_snapshot()
            if coordinator.barrier_active:
                # The barrier node is re-pulled (and re-counted) on
                # resume; the section already drops it from V.
                stats["nodes_generated"] -= 1
            if self.caches is not None:
                section.yielded = list(self.caches[index])
            regions.append(section)
        self._manager.save_document(
            CheckpointDocument(
                regions=regions,
                arrivals=list(self.arrivals),
                delivered=self.delivered,
                stats=stats,
            )
        )
        self._since_save = 0

    def bump(self) -> None:
        """Count one delivered combination; save on the job's cadence."""
        self._since_save += 1
        if self._since_save >= self.every:
            self.save()


def coordinated_stream(
    job: EnumerationJob,
    stats: EnumMISStatistics,
    runner_factory: Callable[[object], "InlineRunner | PoolRunner"],
) -> Iterator[Triangulation]:
    """Run ``job`` through coordinators on runners from ``runner_factory``.

    One runner (one worker pool) is shared by every region; it is
    closed when the stream is closed or exhausted.
    """
    graph = job.graph
    if graph.num_nodes == 0:
        yield Triangulation(graph, ())
        return

    regions = _resolve_regions(job)
    multi_region = len(regions) > 1
    cost_fn = _resolve_cost(job.cost) if job.cost is not None else None
    mode = job.effective_mode

    manager = document = None
    if job.checkpoint_path is not None:
        manager = CheckpointManager(
            job.checkpoint_path,
            job_fingerprint(
                graph, mode, job.triangulator_name(), job.decompose
            ),
            every=job.checkpoint_every,
        )
        document = manager.load_document_if_resuming(job.resume)

    payload = make_payload(graph, job.triangulator)
    runner = runner_factory(payload)
    # One batcher for the whole job: the per-pair cost model learned on
    # one region transfers to the next (same graph family, same
    # triangulator), and the IPC/latency report covers the run.
    batcher = AdaptiveBatcher(
        getattr(runner, "workers", 1), target_ms=job.batch_target_ms
    )
    try:
        if not multi_region:
            # Enumerate over the original graph object so yielded
            # Triangulations reference it, exactly like the serial path.
            sink = restore = None
            fingerprint = ""
            if manager is not None:
                fingerprint = region_fingerprint(graph)
                sink = _DocumentSink(manager, stats)
            if document is not None:
                restore = _match_sections(
                    document, [fingerprint], job
                )[0]
                stats.restore(document.stats)
            priority = None
            if cost_fn is not None:
                priority = lambda answer: cost_fn(  # noqa: E731
                    _materialise(graph, answer)
                )
            coordinator = MISCoordinator(
                graph,
                graph.core.alive,
                runner,
                mode=mode,
                triangulator=job.triangulator,
                priority=priority,
                stats=stats,
                checkpoint=sink,
                restore_state=restore,
                region_fingerprint=fingerprint,
                batcher=batcher,
                max_batch_retries=job.max_batch_retries,
            )
            if sink is not None:
                sink.attach(coordinator)
            answers = coordinator.stream()
            try:
                for answer in answers:
                    yield _materialise(graph, answer)
            finally:
                answers.close()
            return

        # Disconnected input: per-region coordinators on the shared
        # pool, recombined through the lazy fair product.  Ranking is
        # component-local at best, so (as in repro.core.ranked) the
        # cross-region product falls back to plain order.
        region_graphs = [
            graph.subgraph(region_nodes) for region_nodes in regions
        ]
        sink = None
        restores: list = [None] * len(region_graphs)
        fingerprints = [""] * len(region_graphs)
        if manager is not None:
            fingerprints = [
                region_fingerprint(region) for region in region_graphs
            ]
            sink = _DocumentSink(manager, stats)
            sink.caches = [[] for __ in region_graphs]
            if document is not None:
                restores = _match_sections(document, fingerprints, job)
                sink.caches = [
                    list(section.yielded) for section in restores
                ]
                sink.arrivals = list(document.arrivals)
                sink.delivered = document.delivered
                stats.restore(document.stats)
        coordinators = [
            MISCoordinator(
                region,
                region.core.alive,
                runner,
                mode=mode,
                triangulator=job.triangulator,
                stats=stats,
                checkpoint=sink,
                restore_state=restores[index],
                region_fingerprint=fingerprints[index],
                batcher=batcher,
                max_batch_retries=job.max_batch_retries,
            )
            for index, region in enumerate(region_graphs)
        ]
        if sink is not None:
            for coordinator in coordinators:
                sink.attach(coordinator)
        streams = [coordinator.stream() for coordinator in coordinators]
        try:
            yield from _product_stream(
                graph, region_graphs, streams, sink, document
            )
        finally:
            for stream in streams:
                stream.close()
            if sink is not None:
                sink.save()
    finally:
        runner.close()


def _match_sections(
    document: CheckpointDocument,
    fingerprints: list[str],
    job: EnumerationJob,
) -> list:
    """Align a loaded document's sections with the job's regions."""
    if len(document.regions) != len(fingerprints):
        raise CheckpointError(
            f"checkpoint holds {len(document.regions)} region "
            f"section(s) but the job resolves to {len(fingerprints)} "
            f"region(s) under decompose={job.decompose!r}"
        )
    for section, fingerprint in zip(document.regions, fingerprints):
        # Sections from version-1 files carry no region fingerprint;
        # those were single-region by construction.
        if section.region and section.region != fingerprint:
            raise CheckpointError(
                "checkpoint region sections do not match the job's "
                "regions (graph or decomposition changed)"
            )
    return list(document.regions)


def _product_stream(
    graph: Graph,
    region_graphs: list[Graph],
    streams: list[Iterator[Answer]],
    sink: _DocumentSink | None,
    document: CheckpointDocument | None,
) -> Iterator[Triangulation]:
    """The lazy fair product over region answer streams, resumable.

    Combination semantics match :func:`repro.core.enumerate._fair_product`:
    when region i contributes a new answer x, every combination of x
    with the already-cached answers of the other regions is emitted
    (none while any other cache is still empty, so seeding falls out
    of the uniform rule).  Each combination contains exactly one new
    coordinate, hence no duplicates.

    On resume, the recorded ``arrivals`` sequence is replayed against
    the restored caches to regenerate the interrupted run's exact
    combination order; the first ``delivered`` combinations are
    skipped (the consumer already has them — counting happens before
    the yield, matching the at-most-once convention of the per-region
    yielded sets) and the remainder re-emitted before live streaming
    continues.
    """
    count = len(streams)
    caches: list[list[Answer]] = (
        sink.caches
        if sink is not None and sink.caches is not None
        else [[] for __ in range(count)]
    )
    # Per-region answer → fill memo, so a combination costs list
    # concatenation instead of re-saturating every coordinate.
    fills: list[dict[Answer, tuple]] = [{} for __ in range(count)]

    def combine(parts: list[Answer]) -> Triangulation:
        fill: list[tuple[Node, Node]] = []
        for index, answer in enumerate(parts):
            memo = fills[index]
            part = memo.get(answer)
            if part is None:
                part = _materialise(region_graphs[index], answer).fill_edges
                memo[answer] = part
            fill.extend(part)
        return Triangulation(graph, tuple(fill))

    if document is not None and document.arrivals:
        # Replay the interrupted product from the restored caches.
        replayed: list[list[Answer]] = [[] for __ in range(count)]
        positions = [0] * count
        emitted = 0
        for region_index in document.arrivals:
            if not 0 <= region_index < count or positions[
                region_index
            ] >= len(caches[region_index]):
                raise CheckpointError(
                    "checkpoint product state is inconsistent (arrivals "
                    "do not match the per-region answer lists)"
                )
            answer = caches[region_index][positions[region_index]]
            positions[region_index] += 1
            others = [
                replayed[j] for j in range(count) if j != region_index
            ]
            for rest in itertools.product(*others):
                emitted += 1
                if emitted > sink.delivered:
                    parts = list(rest)
                    parts.insert(region_index, answer)
                    sink.delivered += 1
                    yield combine(parts)
            replayed[region_index].append(answer)
        if positions != [len(cache) for cache in caches]:
            raise CheckpointError(
                "checkpoint product state is inconsistent (answers "
                "missing from the arrival record)"
            )
        if sink.delivered > emitted:
            # More combinations marked delivered than the recorded
            # product can produce: a corrupt file.  Silently skipping
            # every replayed combination would lose answers for good.
            raise CheckpointError(
                "checkpoint product state is inconsistent (delivered "
                f"count {sink.delivered} exceeds the {emitted} "
                "recorded combinations)"
            )

    active = list(range(count))
    while active:
        for index in list(active):
            try:
                answer = next(streams[index])
            except StopIteration:
                active.remove(index)
                continue
            # Cache and arrival-record appends stay adjacent (no yield
            # between them), so any snapshot taken from here on is
            # consistent.
            caches[index].append(answer)
            if sink is not None:
                sink.arrivals.append(index)
            others = [caches[j] for j in range(count) if j != index]
            for rest in itertools.product(*others):
                parts = list(rest)
                parts.insert(index, answer)
                if sink is not None:
                    sink.delivered += 1
                yield combine(parts)
            if sink is not None:
                sink.bump()


class ShardedBackend(EnumerationBackend):
    """Partition the EnumMIS answer queue across worker processes."""

    name = "sharded"

    def stream(
        self,
        job: EnumerationJob,
        stats: EnumMISStatistics,
        workers: int | None,
    ) -> Iterator[Triangulation]:
        count = workers if workers is not None else job.workers
        if count is None:
            count = default_worker_count()
        if count < 1:
            raise EngineError(
                f"sharded backend needs workers >= 1, got {count}"
            )
        limits = BatchLimits.from_cli(
            job.batch_deadline_s, job.batch_rss_limit_mb
        )
        return coordinated_stream(
            job,
            stats,
            lambda payload: PoolRunner(payload, count, limits=limits),
        )


register_backend(ShardedBackend())
