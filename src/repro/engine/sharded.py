"""The ``sharded`` backend: EnumMIS across a multiprocessing pool.

The graph is decomposed exactly as the serial pipeline does
(components / atoms / none); each region runs a
:class:`~repro.engine.coordinator.MISCoordinator` whose extend tasks
execute on a shared worker pool, and disconnected inputs are recombined
through the same lazy fair product as the serial enumerator.  Answers
arrive as frozensets of separator masks and are materialised into
:class:`~repro.core.triangulation.Triangulation` objects here, by
saturating the masks on a scratch bitmask core — identical to the
serial yield path, so both backends produce equal Triangulation values.

The module also hosts :func:`coordinated_stream`, the backend-agnostic
assembly (regions → coordinators → materialisation → product), which
the serial backend reuses with an in-process runner for checkpointable
runs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.core.enumerate import _fair_product
from repro.core.ranked import _resolve_cost
from repro.core.triangulation import Triangulation
from repro.engine.base import EngineError, EnumerationBackend, register_backend
from repro.engine.checkpoint import CheckpointManager, job_fingerprint
from repro.engine.coordinator import Answer, MISCoordinator
from repro.engine.job import EnumerationJob
from repro.engine.pool import (
    InlineRunner,
    PoolRunner,
    default_worker_count,
    make_payload,
)
from repro.graph.components import connected_components
from repro.graph.graph import Graph, Node
from repro.sgr.enum_mis import EnumMISStatistics

__all__ = ["ShardedBackend", "coordinated_stream"]


def _resolve_regions(job: EnumerationJob) -> list[frozenset]:
    graph = job.graph
    if job.decompose == "none":
        return [graph.node_set()]
    if job.decompose == "atoms":
        from repro.chordal.atoms import atoms

        return list(atoms(graph))
    return list(connected_components(graph))


def _materialise(
    region: Graph, answer: Answer
) -> Triangulation:
    """``g[φ]`` from separator masks — the fill at yield time."""
    scratch = region.core.copy()
    label_of = region.label_of
    fill: list[tuple[Node, Node]] = []
    for separator_mask in answer:
        for u, v in scratch.saturate(separator_mask):
            fill.append((label_of(u), label_of(v)))
    return Triangulation(region, tuple(fill))


def coordinated_stream(
    job: EnumerationJob,
    stats: EnumMISStatistics,
    runner_factory: Callable[[object], "InlineRunner | PoolRunner"],
) -> Iterator[Triangulation]:
    """Run ``job`` through coordinators on runners from ``runner_factory``.

    One runner (one worker pool) is shared by every region; it is
    closed when the stream is closed or exhausted.
    """
    graph = job.graph
    if graph.num_nodes == 0:
        yield Triangulation(graph, ())
        return

    regions = _resolve_regions(job)
    multi_region = len(regions) > 1
    if job.checkpoint_path is not None and multi_region:
        raise EngineError(
            "checkpointing requires a single-region job (a connected "
            "graph, or decompose='none'); got "
            f"{len(regions)} regions under decompose={job.decompose!r}"
        )

    cost_fn = _resolve_cost(job.cost) if job.cost is not None else None
    mode = job.effective_mode

    payload = make_payload(graph, job.triangulator)
    runner = runner_factory(payload)
    try:
        if not multi_region:
            # Enumerate over the original graph object so yielded
            # Triangulations reference it, exactly like the serial path.
            checkpoint = None
            if job.checkpoint_path is not None:
                checkpoint = CheckpointManager(
                    job.checkpoint_path,
                    job_fingerprint(
                        graph,
                        mode,
                        job.triangulator_name(),
                        job.decompose,
                    ),
                    every=job.checkpoint_every,
                )
            priority = None
            if cost_fn is not None:
                priority = lambda answer: cost_fn(  # noqa: E731
                    _materialise(graph, answer)
                )
            coordinator = MISCoordinator(
                graph,
                graph.core.alive,
                runner,
                mode=mode,
                triangulator=job.triangulator,
                priority=priority,
                stats=stats,
                checkpoint=checkpoint,
                resume=job.resume,
            )
            answers = coordinator.stream()
            try:
                for answer in answers:
                    yield _materialise(graph, answer)
            finally:
                answers.close()
            return

        # Disconnected input: per-region coordinators on the shared
        # pool, recombined through the lazy fair product.  Ranking is
        # component-local at best, so (as in repro.core.ranked) the
        # cross-region product falls back to plain order.
        def region_stream(region: Graph) -> Iterator[Triangulation]:
            coordinator = MISCoordinator(
                region,
                region.core.alive,
                runner,
                mode=mode,
                triangulator=job.triangulator,
                stats=stats,
            )
            for answer in coordinator.stream():
                yield _materialise(region, answer)

        streams: list[Iterator[Triangulation]] = [
            region_stream(graph.subgraph(region_nodes))
            for region_nodes in regions
        ]
        try:
            for combination in _fair_product(streams):
                fill: list[tuple[Node, Node]] = []
                for part in combination:
                    fill.extend(part.fill_edges)
                yield Triangulation(graph, tuple(fill))
        finally:
            for stream in streams:
                stream.close()
    finally:
        runner.close()


class ShardedBackend(EnumerationBackend):
    """Partition the EnumMIS answer queue across worker processes."""

    name = "sharded"

    def stream(
        self,
        job: EnumerationJob,
        stats: EnumMISStatistics,
        workers: int | None,
    ) -> Iterator[Triangulation]:
        count = workers if workers is not None else job.workers
        if count is None:
            count = default_worker_count()
        if count < 1:
            raise EngineError(
                f"sharded backend needs workers >= 1, got {count}"
            )
        return coordinated_stream(
            job, stats, lambda payload: PoolRunner(payload, count)
        )


register_backend(ShardedBackend())
